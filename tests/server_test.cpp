// Serving subsystem tests: wire-protocol codecs, the daemon's
// request/response loop, malformed and oversized frames, concurrent
// clients, clean shutdown with requests in flight — and the headline
// acceptance invariant: a daemon-served model payload is byte-identical
// to a one-shot analysis of the same (source, options), cold and warm.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include "core/artifacts.h"
#include "corpus/manifest.h"
#include "driver/batch.h"
#include "model/python_emitter.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/server.h"
#include "support/socket.h"
#include "workloads/workloads.h"

namespace mira::server {
namespace {

// ---------------------------------------------------------------- codecs

TEST(ProtocolCodec, AnalyzeRequestRoundTrips) {
  SourceItem item{"kernel.mc", "int f() { return 1; }"};
  std::string wire = encodeAnalyzeRequest(item, kOptionOptimize);

  bio::Reader r{wire, 0};
  MessageType type{};
  std::string error;
  ASSERT_TRUE(readHeader(r, type, error)) << error;
  EXPECT_EQ(type, MessageType::analyze);

  SourceItem decoded;
  std::uint8_t flags = 0;
  ASSERT_TRUE(decodeAnalyzeRequest(r, decoded, flags));
  EXPECT_EQ(decoded.name, item.name);
  EXPECT_EQ(decoded.source, item.source);
  EXPECT_EQ(flags, kOptionOptimize);
}

TEST(ProtocolCodec, BatchRequestRoundTrips) {
  std::vector<SourceItem> items{{"a", "src a"}, {"b", "src b"}, {"c", ""}};
  std::string wire = encodeBatchRequest(items, 0x7);

  bio::Reader r{wire, 0};
  MessageType type{};
  std::string error;
  ASSERT_TRUE(readHeader(r, type, error)) << error;
  EXPECT_EQ(type, MessageType::batch);

  std::vector<SourceItem> decoded;
  std::uint8_t flags = 0;
  ASSERT_TRUE(decodeBatchRequest(r, decoded, flags));
  EXPECT_EQ(flags, 0x7);
  ASSERT_EQ(decoded.size(), 3u);
  EXPECT_EQ(decoded[1].name, "b");
  EXPECT_EQ(decoded[2].source, "");
}

TEST(ProtocolCodec, RepliesRoundTrip) {
  AnalyzeReply reply;
  reply.cacheHit = true;
  reply.micros = 123456;
  reply.payload = std::string("\x01payload bytes\x00with nul", 23);
  std::string wire = encodeAnalyzeReply(reply);

  bio::Reader r{wire, 0};
  MessageType type{};
  std::string error;
  ASSERT_TRUE(readHeader(r, type, error)) << error;
  EXPECT_EQ(type, MessageType::analyzeReply);
  AnalyzeReply decoded;
  ASSERT_TRUE(decodeAnalyzeReply(r, decoded));
  EXPECT_TRUE(decoded.cacheHit);
  EXPECT_EQ(decoded.micros, 123456u);
  EXPECT_EQ(decoded.payload, reply.payload);

  ServerStats stats;
  stats.uptimeMicros = 1;
  stats.cacheHits = 42;
  stats.diskBytes = 1ull << 40;
  stats.threads = 8;
  std::string statsWire = encodeCacheStatsReply(stats);
  bio::Reader sr{statsWire, 0};
  ASSERT_TRUE(readHeader(sr, type, error)) << error;
  EXPECT_EQ(type, MessageType::cacheStatsReply);
  ServerStats decodedStats;
  ASSERT_TRUE(decodeCacheStatsReply(sr, decodedStats));
  EXPECT_EQ(decodedStats.cacheHits, 42u);
  EXPECT_EQ(decodedStats.diskBytes, 1ull << 40);
  EXPECT_EQ(decodedStats.threads, 8u);
}

TEST(ProtocolCodec, RejectsBadMagicAndVersion) {
  std::string wire = encodeEmptyMessage(MessageType::ping);
  {
    std::string bad = wire;
    bad[0] = 'X';
    bio::Reader r{bad, 0};
    MessageType type{};
    std::string error;
    EXPECT_FALSE(readHeader(r, type, error));
    EXPECT_NE(error.find("magic"), std::string::npos);
  }
  {
    std::string bad = wire;
    bad[4] = 99; // version field
    bio::Reader r{bad, 0};
    MessageType type{};
    std::string error;
    EXPECT_FALSE(readHeader(r, type, error));
    EXPECT_NE(error.find("version"), std::string::npos);
  }
  {
    std::string truncated = wire.substr(0, 6);
    bio::Reader r{truncated, 0};
    MessageType type{};
    std::string error;
    EXPECT_FALSE(readHeader(r, type, error));
  }
}

TEST(ProtocolCodec, RejectsTrailingGarbage) {
  SourceItem item{"a", "b"};
  std::string wire = encodeAnalyzeRequest(item, 0);
  wire += "junk";
  bio::Reader r{wire, 0};
  MessageType type{};
  std::string error;
  ASSERT_TRUE(readHeader(r, type, error));
  SourceItem decoded;
  std::uint8_t flags = 0;
  EXPECT_FALSE(decodeAnalyzeRequest(r, decoded, flags));
}

TEST(ProtocolCodec, OptionFlagsMatchRequestKeyInputs) {
  // The wire flags must cover exactly the options requestKey hashes:
  // packing then unpacking preserves every model-affecting toggle.
  core::MiraOptions options;
  options.compile.compiler.optimize = false;
  options.compile.compiler.vectorize = true;
  options.metrics.assumeBranchesTaken = false;
  core::MiraOptions round = unpackOptions(packOptions(options));
  EXPECT_EQ(round.compile.compiler.optimize, false);
  EXPECT_EQ(round.compile.compiler.vectorize, true);
  EXPECT_EQ(round.metrics.assumeBranchesTaken, false);
}

// ---------------------------------------------------------------- daemon

/// Starts an AnalysisServer on a fresh socket in a thread; tears it down
/// (via requestStop) on destruction if a test did not shut it down.
class DaemonFixture {
public:
  explicit DaemonFixture(ServerOptions options = {}) {
    static std::atomic<int> counter{0};
    socketPath_ = (std::filesystem::temp_directory_path() /
                   ("mira_server_test_" + std::to_string(::getpid()) + "_" +
                    std::to_string(counter.fetch_add(1)) + ".sock"))
                      .string();
    options.socketPath = socketPath_;
    if (options.threads == 0)
      options.threads = 2;
    server_ = std::make_unique<AnalysisServer>(options);
    std::string error;
    started_ = server_->start(error);
    EXPECT_TRUE(started_) << error;
    if (started_)
      thread_ = std::thread([this] { server_->serve(); });
  }

  ~DaemonFixture() {
    if (thread_.joinable()) {
      server_->requestStop();
      thread_.join();
    }
  }

  /// Join serve() without forcing a stop — for tests that shut the
  /// daemon down over the wire and assert it actually exits.
  void join() { thread_.join(); }

  AnalysisServer &server() { return *server_; }
  const std::string &socketPath() const { return socketPath_; }
  bool started() const { return started_; }

private:
  std::string socketPath_;
  std::unique_ptr<AnalysisServer> server_;
  std::thread thread_;
  bool started_ = false;
};

TEST(AnalysisServerTest, ColdAndWarmPayloadsAreByteIdenticalToOneShot) {
  DaemonFixture daemon;
  ASSERT_TRUE(daemon.started());

  // One-shot reference: what `mira-cli analyze` computes and what the
  // schema-v2 disk cache would store for this (source, options, name).
  const std::string name = "@fig5";
  const std::string &source = workloads::fig5Source();
  core::MiraOptions options;
  core::AnalysisSpec spec;
  spec.name = name;
  spec.source = source;
  spec.options = options;
  spec.artifacts = core::kArtifactModel | core::kArtifactDiagnostics |
                   core::kArtifactCoverage;
  core::Artifacts direct = core::analyze(spec);
  ASSERT_TRUE(direct.ok) << direct.diagnostics;
  ASSERT_TRUE(direct.coverage.has_value());
  const std::string expected = driver::serializeArtifactPayload(
      direct.model.get(), &*direct.coverage, direct.diagnostics, name);

  Client client;
  ASSERT_TRUE(client.connect(daemon.socketPath())) << client.lastError();

  ClientOutcome cold;
  ASSERT_TRUE(client.analyze(name, source, options, cold))
      << client.lastError();
  EXPECT_TRUE(cold.ok);
  EXPECT_FALSE(cold.cacheHit);
  EXPECT_EQ(cold.payload, expected) << "cold daemon payload diverges from "
                                       "one-shot analysis";

  ClientOutcome warm;
  ASSERT_TRUE(client.analyze(name, source, options, warm))
      << client.lastError();
  EXPECT_TRUE(warm.ok);
  EXPECT_TRUE(warm.cacheHit);
  EXPECT_EQ(warm.payload, expected) << "warm daemon payload diverges from "
                                       "one-shot analysis";

  // Zero recomputation on the warm repeat, per the server's own
  // counters: exactly one pipeline run for two requests.
  ServerStats stats;
  ASSERT_TRUE(client.cacheStats(stats)) << client.lastError();
  EXPECT_EQ(stats.sourcesAnalyzed, 2u);
  EXPECT_EQ(stats.computed, 1u);
  EXPECT_EQ(stats.cacheHits, 1u);
  EXPECT_EQ(stats.failures, 0u);
  EXPECT_EQ(stats.memoryEntries, 1u);
}

TEST(AnalysisServerTest, BatchKeepsInputOrderAndSharesCache) {
  DaemonFixture daemon;
  ASSERT_TRUE(daemon.started());

  Client client;
  ASSERT_TRUE(client.connect(daemon.socketPath())) << client.lastError();

  std::vector<SourceItem> items{
      {"first", workloads::dgemmSource()},
      {"second", "int broken("},
      {"third", workloads::fig5Source()},
      {"fourth", workloads::dgemmSource()}, // duplicate source of "first"
  };
  std::vector<ClientOutcome> outcomes;
  ASSERT_TRUE(client.analyzeBatch(items, core::MiraOptions(), outcomes))
      << client.lastError();
  ASSERT_EQ(outcomes.size(), 4u);
  EXPECT_TRUE(outcomes[0].ok);
  EXPECT_FALSE(outcomes[1].ok);
  EXPECT_FALSE(outcomes[1].diagnostics.empty());
  EXPECT_TRUE(outcomes[2].ok);
  EXPECT_TRUE(outcomes[3].ok);
  EXPECT_TRUE(outcomes[3].cacheHit); // same source as "first"
  // Payload names echo the producing request (docs/CACHING.md).
  EXPECT_EQ(outcomes[0].name, "first");

  ServerStats stats;
  ASSERT_TRUE(client.cacheStats(stats)) << client.lastError();
  EXPECT_EQ(stats.batchRequests, 1u);
  EXPECT_EQ(stats.sourcesAnalyzed, 4u);
  EXPECT_EQ(stats.cacheHits, 1u);
  EXPECT_EQ(stats.failures, 1u);
}

TEST(AnalysisServerTest, MalformedFrameGetsErrorReplyAndServerSurvives) {
  DaemonFixture daemon;
  ASSERT_TRUE(daemon.started());

  {
    // A well-framed message that is not a protocol message at all.
    std::string error;
    net::Socket raw = net::connectUnix(daemon.socketPath(), error);
    ASSERT_TRUE(raw.valid()) << error;
    ASSERT_TRUE(net::writeFrame(raw.fd(), "this is not a protocol message"));
    std::string reply;
    ASSERT_EQ(net::readFrame(raw.fd(), reply, kMaxFrameBytes),
              net::FrameStatus::ok);
    bio::Reader r{reply, 0};
    MessageType type{};
    std::string headerError;
    ASSERT_TRUE(readHeader(r, type, headerError)) << headerError;
    EXPECT_EQ(type, MessageType::error);
    std::string message;
    ASSERT_TRUE(decodeErrorReply(r, message));
    EXPECT_NE(message.find("magic"), std::string::npos) << message;
    // The daemon closes the connection after an error.
    EXPECT_EQ(net::readFrame(raw.fd(), reply, kMaxFrameBytes),
              net::FrameStatus::closed);
  }
  {
    // A truncated frame: the header promises more bytes than arrive.
    std::string error;
    net::Socket raw = net::connectUnix(daemon.socketPath(), error);
    ASSERT_TRUE(raw.valid()) << error;
    const char partial[] = {100, 0, 0, 0, 'x', 'y'}; // 100-byte promise
    ASSERT_EQ(::send(raw.fd(), partial, sizeof(partial), 0),
              static_cast<ssize_t>(sizeof(partial)));
    raw.close();
  }

  // After both abuses the daemon still answers normal requests. The
  // truncated connection is handled asynchronously, so poll briefly for
  // its error count instead of racing the handler.
  Client client;
  ASSERT_TRUE(client.connect(daemon.socketPath())) << client.lastError();
  EXPECT_TRUE(client.ping()) << client.lastError();
  ServerStats stats;
  for (int attempt = 0; attempt < 100; ++attempt) {
    ASSERT_TRUE(client.cacheStats(stats)) << client.lastError();
    if (stats.protocolErrors >= 2)
      break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(stats.protocolErrors, 2u);
}

TEST(AnalysisServerTest, OversizedFrameIsRejectedWithoutReadingBody) {
  ServerOptions options;
  options.maxFrameBytes = 1024; // tiny cap to keep the test cheap
  DaemonFixture daemon(options);
  ASSERT_TRUE(daemon.started());

  std::string error;
  net::Socket raw = net::connectUnix(daemon.socketPath(), error);
  ASSERT_TRUE(raw.valid()) << error;
  // Declare 16 MiB; send only the header. The daemon must answer from
  // the declaration alone.
  const unsigned char header[] = {0, 0, 0, 1};
  ASSERT_EQ(::send(raw.fd(), header, sizeof(header), 0),
            static_cast<ssize_t>(sizeof(header)));
  std::string reply;
  ASSERT_EQ(net::readFrame(raw.fd(), reply, kMaxFrameBytes),
            net::FrameStatus::ok);
  bio::Reader r{reply, 0};
  MessageType type{};
  std::string headerError;
  ASSERT_TRUE(readHeader(r, type, headerError)) << headerError;
  EXPECT_EQ(type, MessageType::error);
  std::string message;
  ASSERT_TRUE(decodeErrorReply(r, message));
  EXPECT_NE(message.find("exceeds"), std::string::npos) << message;

  Client client;
  ASSERT_TRUE(client.connect(daemon.socketPath())) << client.lastError();
  EXPECT_TRUE(client.ping()) << client.lastError();
}

TEST(AnalysisServerTest, ConcurrentClientsAllGetCorrectReplies) {
  ServerOptions options;
  options.threads = 4;
  DaemonFixture daemon(options);
  ASSERT_TRUE(daemon.started());

  constexpr int kClients = 4;
  constexpr int kRequestsEach = 3;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      Client client;
      if (!client.connect(daemon.socketPath())) {
        ++failures;
        return;
      }
      const std::string &source =
          c % 2 == 0 ? workloads::fig5Source() : workloads::dgemmSource();
      for (int i = 0; i < kRequestsEach; ++i) {
        ClientOutcome outcome;
        if (!client.analyze("client" + std::to_string(c % 2), source,
                            core::MiraOptions(), outcome) ||
            !outcome.ok)
          ++failures;
      }
    });
  }
  for (auto &thread : threads)
    thread.join();
  EXPECT_EQ(failures.load(), 0);

  // 12 requests over 2 distinct (source, options) pairs: exactly 2
  // pipeline runs, everything else served from the shared cache.
  Client client;
  ASSERT_TRUE(client.connect(daemon.socketPath())) << client.lastError();
  ServerStats stats;
  ASSERT_TRUE(client.cacheStats(stats)) << client.lastError();
  EXPECT_EQ(stats.sourcesAnalyzed,
            static_cast<std::uint64_t>(kClients * kRequestsEach));
  EXPECT_EQ(stats.computed, 2u);
  EXPECT_EQ(stats.cacheHits,
            static_cast<std::uint64_t>(kClients * kRequestsEach - 2));
}

TEST(AnalysisServerTest, ShutdownDrainsInFlightWorkAndRemovesSocket) {
  ServerOptions options;
  options.threads = 3;
  DaemonFixture daemon(options);
  ASSERT_TRUE(daemon.started());
  const std::string socketPath = daemon.socketPath();

  // An idle connection: its server-side reader is blocked in recv and
  // must be woken (EOF) by the shutdown, not waited on forever.
  std::string error;
  net::Socket idle = net::connectUnix(socketPath, error);
  ASSERT_TRUE(idle.valid()) << error;

  // A client with real work in flight around the shutdown.
  Client worker;
  ASSERT_TRUE(worker.connect(socketPath)) << worker.lastError();
  ClientOutcome outcome;
  ASSERT_TRUE(worker.analyze("@stream", workloads::streamSource(),
                             core::MiraOptions(), outcome))
      << worker.lastError();
  EXPECT_TRUE(outcome.ok);

  Client stopper;
  ASSERT_TRUE(stopper.connect(socketPath)) << stopper.lastError();
  ASSERT_TRUE(stopper.shutdownServer()) << stopper.lastError();

  // serve() must return on its own (the fixture would otherwise hang
  // here — a deadlocked drain fails the test by timeout).
  daemon.join();

  // The socket file is gone and new connections are refused.
  EXPECT_FALSE(std::filesystem::exists(socketPath));
  Client late;
  EXPECT_FALSE(late.connect(socketPath));

  // The idle connection saw EOF rather than hanging.
  std::string leftover;
  EXPECT_NE(net::readFrame(idle.fd(), leftover, kMaxFrameBytes),
            net::FrameStatus::ok);
}

TEST(AnalysisServerTest, DiskCacheServesAcrossDaemonRestarts) {
  const std::string cacheDir =
      (std::filesystem::temp_directory_path() / "mira_server_test_disk")
          .string();
  std::filesystem::remove_all(cacheDir);

  ServerOptions options;
  options.cacheDir = cacheDir;
  std::string coldPayload;
  {
    DaemonFixture daemon(options);
    ASSERT_TRUE(daemon.started());
    Client client;
    ASSERT_TRUE(client.connect(daemon.socketPath())) << client.lastError();
    ClientOutcome outcome;
    ASSERT_TRUE(client.analyze("@minife", workloads::minifeSource(),
                               core::MiraOptions(), outcome))
        << client.lastError();
    EXPECT_TRUE(outcome.ok);
    EXPECT_FALSE(outcome.cacheHit);
    coldPayload = outcome.payload;
  }
  {
    // A fresh daemon (fresh memory cache) must hit the disk level.
    DaemonFixture daemon(options);
    ASSERT_TRUE(daemon.started());
    Client client;
    ASSERT_TRUE(client.connect(daemon.socketPath())) << client.lastError();
    ClientOutcome outcome;
    ASSERT_TRUE(client.analyze("@minife", workloads::minifeSource(),
                               core::MiraOptions(), outcome))
        << client.lastError();
    EXPECT_TRUE(outcome.ok);
    EXPECT_TRUE(outcome.cacheHit);
    EXPECT_EQ(outcome.payload, coldPayload);

    ServerStats stats;
    ASSERT_TRUE(client.cacheStats(stats)) << client.lastError();
    EXPECT_EQ(stats.computed, 0u);
    EXPECT_EQ(stats.diskHits, 1u);
  }
  std::filesystem::remove_all(cacheDir);
}

TEST(AnalysisServerTest, RefusesToClobberANonSocketPath) {
  // Stale-socket reclaim must never extend to regular files: a typo'd
  // --socket pointing at user data fails loudly and leaves it intact.
  const std::string path =
      (std::filesystem::temp_directory_path() / "mira_server_test_notasock")
          .string();
  {
    std::ofstream out(path);
    out << "precious bytes";
  }
  std::string error;
  net::Socket listener = net::listenUnix(path, error);
  EXPECT_FALSE(listener.valid());
  EXPECT_NE(error.find("not a socket"), std::string::npos) << error;
  ASSERT_TRUE(std::filesystem::exists(path));
  {
    std::ifstream in(path);
    std::string contents;
    std::getline(in, contents);
    EXPECT_EQ(contents, "precious bytes");
  }
  std::filesystem::remove(path);
}

TEST(AnalysisServerTest, OverCapReplyDegradesToError) {
  // A reply the daemon cannot legally frame (tiny cap, real payload)
  // must come back as Error, not as an oversized frame the client
  // rejects mid-stream.
  ServerOptions options;
  options.maxFrameBytes = 64; // the request fits; the analyze reply
                              // (outcome payload + model) cannot
  DaemonFixture daemon(options);
  ASSERT_TRUE(daemon.started());

  std::string error;
  net::Socket raw = net::connectUnix(daemon.socketPath(), error);
  ASSERT_TRUE(raw.valid()) << error;
  SourceItem item{"f", "int f() { return 1; }"};
  ASSERT_TRUE(net::writeFrame(raw.fd(), encodeAnalyzeRequest(item, 0x7)));
  std::string reply;
  ASSERT_EQ(net::readFrame(raw.fd(), reply, kMaxFrameBytes),
            net::FrameStatus::ok);
  bio::Reader r{reply, 0};
  MessageType type{};
  std::string headerError;
  ASSERT_TRUE(readHeader(r, type, headerError)) << headerError;
  EXPECT_EQ(type, MessageType::error);
  std::string message;
  ASSERT_TRUE(decodeErrorReply(r, message));
  EXPECT_NE(message.find("frame cap"), std::string::npos) << message;
}

TEST(AnalysisServerTest, CoverageRoundTripMatchesOneShotCounters) {
  DaemonFixture daemon;
  ASSERT_TRUE(daemon.started());

  // One-shot reference coverage for the same (source, options).
  core::AnalysisSpec spec;
  spec.name = "@fig5";
  spec.source = workloads::fig5Source();
  spec.artifacts = core::kArtifactCoverage;
  core::Artifacts direct = core::analyze(spec);
  ASSERT_TRUE(direct.ok);

  Client client;
  ASSERT_TRUE(client.connect(daemon.socketPath())) << client.lastError();

  CoverageReply cold;
  ASSERT_TRUE(client.coverage("@fig5", workloads::fig5Source(),
                              core::MiraOptions(), cold))
      << client.lastError();
  EXPECT_TRUE(cold.ok);
  EXPECT_FALSE(cold.cacheHit);
  EXPECT_FALSE(cold.recompiled);
  EXPECT_EQ(cold.coverage.loops, direct.coverage->loops);
  EXPECT_EQ(cold.coverage.statements, direct.coverage->statements);
  EXPECT_EQ(cold.coverage.inLoopStatements,
            direct.coverage->inLoopStatements);

  // Warm: served from the daemon's cached summary — a hit, and still
  // no recompile because the memory entry holds the live program.
  CoverageReply warm;
  ASSERT_TRUE(client.coverage("@fig5", workloads::fig5Source(),
                              core::MiraOptions(), warm))
      << client.lastError();
  EXPECT_TRUE(warm.ok);
  EXPECT_TRUE(warm.cacheHit);
  EXPECT_FALSE(warm.recompiled);
  EXPECT_EQ(warm.coverage.loops, cold.coverage.loops);

  ServerStats stats;
  ASSERT_TRUE(client.cacheStats(stats)) << client.lastError();
  EXPECT_EQ(stats.coverageRequests, 2u);
  EXPECT_EQ(stats.computed, 1u);
  EXPECT_EQ(stats.cacheHits, 1u);
  EXPECT_EQ(stats.recompiles, 0u);
}

TEST(AnalysisServerTest, SimulateRoundTripMatchesOneShotCounters) {
  DaemonFixture daemon;
  ASSERT_TRUE(daemon.started());

  core::AnalysisSpec spec;
  spec.name = "@fig5";
  spec.source = workloads::fig5Source();
  spec.artifacts = core::kArtifactSimulation;
  spec.simulation.function = "fig5_main";
  spec.simulation.args = {sim::Value::ofInt(64)};
  core::Artifacts direct = core::analyze(spec);
  ASSERT_TRUE(direct.ok);
  std::string reference;
  putSimResult(reference, *direct.simulation);

  Client client;
  ASSERT_TRUE(client.connect(daemon.socketPath())) << client.lastError();

  SimulateReply reply;
  ASSERT_TRUE(client.simulate("@fig5", workloads::fig5Source(),
                              core::MiraOptions(), spec.simulation, reply))
      << client.lastError();
  ASSERT_TRUE(reply.ok);
  ASSERT_TRUE(reply.result.ok) << reply.result.error;
  std::string served;
  putSimResult(served, reply.result);
  EXPECT_EQ(served, reference) << "daemon-served simulation counters "
                                  "diverge from a one-shot run";

  // Different arguments re-simulate on the same cached analysis.
  core::SimulationArgs smaller = spec.simulation;
  smaller.args = {sim::Value::ofInt(8)};
  SimulateReply small;
  ASSERT_TRUE(client.simulate("@fig5", workloads::fig5Source(),
                              core::MiraOptions(), smaller, small))
      << client.lastError();
  ASSERT_TRUE(small.ok);
  EXPECT_TRUE(small.cacheHit);
  EXPECT_LT(small.result.total.totalInstructions,
            reply.result.total.totalInstructions);

  ServerStats stats;
  ASSERT_TRUE(client.cacheStats(stats)) << client.lastError();
  EXPECT_EQ(stats.simulateRequests, 2u);
  EXPECT_EQ(stats.computed, 1u);
  EXPECT_EQ(stats.recompiles, 0u); // live program in the memory cache
}

TEST(AnalysisServerTest, WarmDiskSimulateRecompilesWithoutRecomputing) {
  // The acceptance headline: against a warm daemon whose memory cache
  // is cold but whose disk cache is hot, coverage and simulation are
  // served without a full re-analysis — coverage from the stored
  // summary, simulation through one recompile-on-demand.
  const std::string cacheDir =
      (std::filesystem::temp_directory_path() / "mira_server_test_artifact")
          .string();
  std::filesystem::remove_all(cacheDir);
  ServerOptions options;
  options.cacheDir = cacheDir;

  core::SimulationArgs simArgs;
  simArgs.function = "fig5_main";
  simArgs.args = {sim::Value::ofInt(64)};

  std::string coldSim;
  {
    DaemonFixture daemon(options);
    ASSERT_TRUE(daemon.started());
    Client client;
    ASSERT_TRUE(client.connect(daemon.socketPath())) << client.lastError();
    SimulateReply reply;
    ASSERT_TRUE(client.simulate("@fig5", workloads::fig5Source(),
                                core::MiraOptions(), simArgs, reply))
        << client.lastError();
    ASSERT_TRUE(reply.ok);
    EXPECT_FALSE(reply.cacheHit);
    putSimResult(coldSim, reply.result);
  }
  {
    DaemonFixture daemon(options);
    ASSERT_TRUE(daemon.started());
    Client client;
    ASSERT_TRUE(client.connect(daemon.socketPath())) << client.lastError();

    CoverageReply coverage;
    ASSERT_TRUE(client.coverage("@fig5", workloads::fig5Source(),
                                core::MiraOptions(), coverage))
        << client.lastError();
    EXPECT_TRUE(coverage.ok);
    EXPECT_TRUE(coverage.cacheHit);
    EXPECT_FALSE(coverage.recompiled) << "summary should come from the "
                                         "schema-v2 entry, not a recompile";

    SimulateReply reply;
    ASSERT_TRUE(client.simulate("@fig5", workloads::fig5Source(),
                                core::MiraOptions(), simArgs, reply))
        << client.lastError();
    ASSERT_TRUE(reply.ok);
    EXPECT_TRUE(reply.cacheHit);
    EXPECT_TRUE(reply.recompiled);
    std::string warmSim;
    putSimResult(warmSim, reply.result);
    EXPECT_EQ(warmSim, coldSim);

    ServerStats stats;
    ASSERT_TRUE(client.cacheStats(stats)) << client.lastError();
    EXPECT_EQ(stats.computed, 0u) << "warm daemon must not re-run the "
                                     "full pipeline";
    EXPECT_EQ(stats.recompiles, 1u);
    EXPECT_EQ(stats.diskHits, 1u);
  }
  std::filesystem::remove_all(cacheDir);
}

TEST(AnalysisServerTest, V1ClientIsServedV1PayloadsByTheV2Daemon) {
  DaemonFixture daemon;
  ASSERT_TRUE(daemon.started());

  // The v1 reference payload for this (source, options, name).
  DiagnosticEngine diags;
  core::MiraOptions options;
  core::AnalysisSpec spec;
  spec.name = "@fig5";
  spec.source = workloads::fig5Source();
  spec.options = options;
  spec.artifacts = core::kArtifactModel | core::kArtifactDiagnostics;
  core::Artifacts direct = core::analyze(spec, diags);
  ASSERT_TRUE(direct.ok && direct.resultV1) << diags.str();
  const std::string expected = driver::serializeOutcomePayloadV1(
      direct.resultV1.get(), diags.str(), "@fig5");

  Client v1;
  v1.setProtocolVersion(1);
  ASSERT_TRUE(v1.connect(daemon.socketPath())) << v1.lastError();
  EXPECT_TRUE(v1.ping()) << v1.lastError();

  ClientOutcome outcome;
  ASSERT_TRUE(v1.analyze("@fig5", workloads::fig5Source(), options, outcome))
      << v1.lastError();
  EXPECT_TRUE(outcome.ok);
  EXPECT_EQ(outcome.payload, expected)
      << "v1 peers must keep receiving v1 payload bytes";
  EXPECT_FALSE(outcome.coverage.has_value());

  // The 17-field v1 stats block still decodes for v1 peers.
  ServerStats stats;
  ASSERT_TRUE(v1.cacheStats(stats)) << v1.lastError();
  EXPECT_EQ(stats.sourcesAnalyzed, 1u);

  // v2-only requests are refused client-side under v1...
  CoverageReply coverage;
  EXPECT_FALSE(v1.coverage("@fig5", workloads::fig5Source(), options,
                           coverage));
  EXPECT_NE(v1.lastError().find("protocol version 2"), std::string::npos);

  // ...and server-side if a peer forges a v1 frame with a v2 type.
  std::string error;
  net::Socket raw = net::connectUnix(daemon.socketPath(), error);
  ASSERT_TRUE(raw.valid()) << error;
  SourceItem item{"@fig5", workloads::fig5Source()};
  std::string forged;
  beginMessage(forged, MessageType::coverage, 1);
  bio::putU8(forged, 0);
  bio::putString(forged, item.name);
  bio::putString(forged, item.source);
  ASSERT_TRUE(net::writeFrame(raw.fd(), forged));
  std::string reply;
  ASSERT_EQ(net::readFrame(raw.fd(), reply, kMaxFrameBytes),
            net::FrameStatus::ok);
  bio::Reader r{reply, 0};
  MessageType type{};
  std::string headerError;
  ASSERT_TRUE(readHeader(r, type, headerError)) << headerError;
  EXPECT_EQ(type, MessageType::error);
  std::string message;
  ASSERT_TRUE(decodeErrorReply(r, message));
  EXPECT_NE(message.find("protocol version 2"), std::string::npos);

  // A v2 client on the same daemon sees the coverage summary inside
  // its analyze payload — same model bytes, richer envelope.
  Client v2;
  ASSERT_TRUE(v2.connect(daemon.socketPath())) << v2.lastError();
  ClientOutcome v2Outcome;
  ASSERT_TRUE(v2.analyze("@fig5", workloads::fig5Source(), options,
                         v2Outcome))
      << v2.lastError();
  EXPECT_TRUE(v2Outcome.cacheHit);
  EXPECT_TRUE(v2Outcome.coverage.has_value());
  EXPECT_NE(v2Outcome.payload, outcome.payload);
  EXPECT_EQ(model::emitPython(v2Outcome.analysis->model),
            model::emitPython(outcome.analysis->model));
}

TEST(ProtocolCodec, CoverageAndSimulateRepliesRoundTrip) {
  CoverageReply coverage;
  coverage.cacheHit = true;
  coverage.recompiled = true;
  coverage.micros = 77;
  coverage.ok = true;
  coverage.diagnostics = "warn\n";
  coverage.coverage.loops = 4;
  coverage.coverage.statements = 16;
  coverage.coverage.inLoopStatements = 8;
  std::string wire = encodeCoverageReply(coverage);
  bio::Reader r{wire, 0};
  MessageType type{};
  std::uint32_t version = 0;
  std::string error;
  ASSERT_TRUE(readHeader(r, type, version, error)) << error;
  EXPECT_EQ(type, MessageType::coverageReply);
  EXPECT_EQ(version, kProtocolVersion);
  CoverageReply decoded;
  ASSERT_TRUE(decodeCoverageReply(r, decoded));
  EXPECT_TRUE(decoded.cacheHit);
  EXPECT_TRUE(decoded.recompiled);
  EXPECT_EQ(decoded.coverage.loops, 4u);
  EXPECT_EQ(decoded.coverage.inLoopStatements, 8u);

  core::SimulationArgs sim;
  sim.function = "kernel";
  sim.args = {sim::Value::ofInt(7), sim::Value::ofDouble(2.5)};
  sim.options.fastForward = true;
  sim.options.maxInstructions = 123456789;
  std::string request = encodeSimulateRequest({"k.mc", "int k;"}, 0x3, sim);
  bio::Reader sr{request, 0};
  ASSERT_TRUE(readHeader(sr, type, version, error)) << error;
  EXPECT_EQ(type, MessageType::simulate);
  SourceItem item;
  std::uint8_t flags = 0;
  core::SimulationArgs decodedSim;
  ASSERT_TRUE(decodeSimulateRequest(sr, item, flags, decodedSim));
  EXPECT_EQ(item.name, "k.mc");
  EXPECT_EQ(flags, 0x3);
  EXPECT_EQ(decodedSim.function, "kernel");
  ASSERT_EQ(decodedSim.args.size(), 2u);
  EXPECT_EQ(decodedSim.args[0].i, 7);
  EXPECT_EQ(decodedSim.args[1].f, 2.5);
  EXPECT_TRUE(decodedSim.options.fastForward);
  EXPECT_EQ(decodedSim.options.maxInstructions, 123456789u);
}

// --------------------------------------------- pipelining / backpressure

/// Small distinct kernels so every pipelined reply is distinguishable
/// by payload bytes, making reordering impossible to miss.
std::vector<SourceItem> distinctKernels(std::size_t count) {
  std::vector<SourceItem> items;
  for (std::size_t i = 0; i < count; ++i) {
    const std::string k = std::to_string(i);
    items.push_back({"pipe" + k + ".mc",
                     "double f" + k + "(double x) {\n"
                     "  double s = 0.0;\n"
                     "  for (int i = 0; i < " + std::to_string(3 + i) +
                         "; i++) {\n"
                     "    s = s + x * " + k + ".0;\n"
                     "  }\n"
                     "  return s;\n"
                     "}"});
  }
  return items;
}

TEST(AnalysisServerTest, PipelinedRepliesArriveInOrderByteIdenticalToOneShots) {
  DaemonFixture daemon;
  ASSERT_TRUE(daemon.started());
  const std::vector<SourceItem> items = distinctKernels(6);

  // Reference: the same items as sequential one-shot requests.
  std::vector<std::string> reference;
  {
    Client sequential;
    ASSERT_TRUE(sequential.connect(daemon.socketPath()))
        << sequential.lastError();
    for (const SourceItem &item : items) {
      ClientOutcome outcome;
      ASSERT_TRUE(sequential.analyze(item.name, item.source,
                                     core::MiraOptions(), outcome))
          << sequential.lastError();
      EXPECT_TRUE(outcome.ok) << outcome.diagnostics;
      reference.push_back(outcome.payload);
    }
  }

  // All six requests in flight on one connection; replies must come
  // back in request order with byte-identical payloads.
  Client pipelined;
  ASSERT_TRUE(pipelined.connect(daemon.socketPath()))
      << pipelined.lastError();
  std::vector<ClientOutcome> outcomes;
  ASSERT_TRUE(pipelined.analyzePipelined(items, core::MiraOptions(), outcomes))
      << pipelined.lastError();
  ASSERT_EQ(outcomes.size(), items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    EXPECT_TRUE(outcomes[i].ok) << outcomes[i].diagnostics;
    EXPECT_EQ(outcomes[i].name, items[i].name) << "reply order broke at " << i;
    EXPECT_EQ(outcomes[i].payload, reference[i]) << "payload differs at " << i;
  }
  // The connection survived the whole exchange (Busy never closes, and
  // nothing here should have errored).
  EXPECT_TRUE(pipelined.ping()) << pipelined.lastError();
}

TEST(AnalysisServerTest, BusyRefusalsAreRetriedUntilAllSucceed) {
  ServerOptions options;
  options.threads = 2;
  options.maxInflight = 1;    // one request at a time: the rest get Busy
  options.busyRetryMillis = 5; // keep the retry rounds fast
  DaemonFixture daemon(options);
  ASSERT_TRUE(daemon.started());

  // Four real workloads under a capacity of one: the frames all land
  // before the first finishes computing, so later ones are refused with
  // Busy, and the client's retry rounds must eventually land them all.
  std::vector<SourceItem> items;
  for (int i = 0; i < 4; ++i)
    items.push_back({"busy" + std::to_string(i) + ".mc",
                     workloads::streamSource()});
  Client client;
  ASSERT_TRUE(client.connect(daemon.socketPath())) << client.lastError();
  std::vector<ClientOutcome> outcomes;
  ASSERT_TRUE(client.analyzePipelined(items, core::MiraOptions(), outcomes))
      << client.lastError();
  ASSERT_EQ(outcomes.size(), items.size());
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    EXPECT_TRUE(outcomes[i].ok) << outcomes[i].diagnostics;
    EXPECT_EQ(outcomes[i].name, items[i].name);
  }

  // The daemon must actually have refused work (not just queued it):
  // the busy-rejection counter is the proof the backpressure engaged.
  std::vector<MetricSample> samples;
  ASSERT_TRUE(client.metrics(samples)) << client.lastError();
  std::uint64_t busyRejections = 0;
  for (const MetricSample &sample : samples)
    if (sample.name == "server_busy_rejections_total")
      busyRejections = sample.value;
  EXPECT_GE(busyRejections, 1u);
}

TEST(AnalysisServerTest, GracefulDrainAnswersInFlightRequestThenExits) {
  ServerOptions options;
  options.drainTimeoutMillis = 10000; // generous: the drain must finish
  DaemonFixture daemon(options);
  ASSERT_TRUE(daemon.started());

  // A raw connection with an analyze request in flight when the stop
  // lands. Raw so the reply can be read after requestStop without the
  // Client's reconnect logic getting in the way.
  std::string error;
  net::Socket raw = net::connectUnix(daemon.socketPath(), error);
  ASSERT_TRUE(raw.valid()) << error;
  ASSERT_TRUE(net::writeFrame(
      raw.fd(),
      encodeAnalyzeRequest({"@drain", workloads::streamSource()}, 0)));

  // Wait until the daemon has actually dispatched the request —
  // stopping earlier would race the reader and test nothing.
  Client poll;
  ASSERT_TRUE(poll.connect(daemon.socketPath())) << poll.lastError();
  bool dispatched = false;
  for (int attempt = 0; attempt < 200 && !dispatched; ++attempt) {
    std::vector<MetricSample> samples;
    ASSERT_TRUE(poll.metrics(samples)) << poll.lastError();
    for (const MetricSample &sample : samples)
      if (sample.name == "server_analyze_requests_total" && sample.value >= 1)
        dispatched = true;
    if (!dispatched)
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_TRUE(dispatched);
  poll.disconnect();

  daemon.server().requestStop();

  // The in-flight request is answered before the connection closes.
  std::string reply;
  ASSERT_EQ(net::readFrame(raw.fd(), reply, kMaxFrameBytes),
            net::FrameStatus::ok);
  bio::Reader r{reply, 0};
  MessageType type{};
  std::string headerError;
  ASSERT_TRUE(readHeader(r, type, headerError)) << headerError;
  EXPECT_EQ(type, MessageType::analyzeReply);
  AnalyzeReply decoded;
  ASSERT_TRUE(decodeAnalyzeReply(r, decoded));
  EXPECT_FALSE(decoded.payload.empty());

  // ... then EOF, serve() returns, and the socket file is gone.
  EXPECT_EQ(net::readFrame(raw.fd(), reply, kMaxFrameBytes),
            net::FrameStatus::closed);
  daemon.join();
  EXPECT_FALSE(std::filesystem::exists(daemon.socketPath()));
}

TEST(AnalysisServerTest, MetricsAndCacheStatsRenderTheSameRegistry) {
  DaemonFixture daemon;
  ASSERT_TRUE(daemon.started());
  Client client;
  ASSERT_TRUE(client.connect(daemon.socketPath())) << client.lastError();

  // One computed item and one memory hit to make the counters move.
  ClientOutcome outcome;
  ASSERT_TRUE(client.analyze("@fig5", workloads::fig5Source(),
                             core::MiraOptions(), outcome))
      << client.lastError();
  ASSERT_TRUE(client.analyze("@fig5", workloads::fig5Source(),
                             core::MiraOptions(), outcome))
      << client.lastError();

  ServerStats stats;
  ASSERT_TRUE(client.cacheStats(stats)) << client.lastError();
  std::vector<MetricSample> samples;
  ASSERT_TRUE(client.metrics(samples)) << client.lastError();

  auto sampleValue = [&](const std::string &name) -> std::uint64_t {
    for (const MetricSample &sample : samples)
      if (sample.name == name)
        return sample.value;
    ADD_FAILURE() << "metrics reply is missing " << name;
    return ~0ull;
  };
  // Both views are rendered from the one MetricsRegistry, so the
  // numbers must agree (no request ran between the two reads that
  // would bump these counters).
  EXPECT_EQ(sampleValue("server_cache_hits_total"), stats.cacheHits);
  EXPECT_EQ(sampleValue("server_computed_total"), stats.computed);
  EXPECT_EQ(sampleValue("server_analyze_requests_total"),
            stats.analyzeRequests);
  EXPECT_EQ(sampleValue("server_connections_accepted_total"),
            stats.connectionsAccepted);
  // The sorted-name contract the text renderer relies on.
  for (std::size_t i = 1; i < samples.size(); ++i)
    EXPECT_LT(samples[i - 1].name, samples[i].name);
}

// ----------------------------------------------- manifest batch (v2)

TEST(ProtocolCodec, ManifestBatchMessagesRoundTrip) {
  ManifestBatchRequest request;
  request.flags = 0x5;
  request.progress = true;
  request.shardIndex = 2;
  request.shardCount = 4;
  request.root = "/corpora/nightly";
  request.manifestBytes = std::string("MirM\x01raw manifest\x00bytes", 21);
  request.sinceBytes = "older manifest";
  std::string wire = encodeManifestBatchRequest(request);

  bio::Reader r{wire, 0};
  MessageType type{};
  std::uint32_t version = 0;
  std::string error;
  ASSERT_TRUE(readHeader(r, type, version, error)) << error;
  EXPECT_EQ(type, MessageType::manifestBatch);
  EXPECT_EQ(version, kProtocolVersion);
  ManifestBatchRequest decoded;
  ASSERT_TRUE(decodeManifestBatchRequest(r, decoded));
  EXPECT_EQ(decoded.flags, 0x5);
  EXPECT_TRUE(decoded.progress);
  EXPECT_EQ(decoded.shardIndex, 2u);
  EXPECT_EQ(decoded.shardCount, 4u);
  EXPECT_EQ(decoded.root, request.root);
  EXPECT_EQ(decoded.manifestBytes, request.manifestBytes);
  EXPECT_EQ(decoded.sinceBytes, request.sinceBytes);

  BatchProgress progress;
  progress.done = 7;
  progress.total = 32;
  progress.failures = 1;
  progress.cacheHits = 4;
  std::string progressWire = encodeBatchProgress(progress);
  bio::Reader pr{progressWire, 0};
  ASSERT_TRUE(readHeader(pr, type, error)) << error;
  EXPECT_EQ(type, MessageType::batchProgress);
  BatchProgress decodedProgress;
  ASSERT_TRUE(decodeBatchProgress(pr, decodedProgress));
  EXPECT_EQ(decodedProgress.done, 7u);
  EXPECT_EQ(decodedProgress.total, 32u);
  EXPECT_EQ(decodedProgress.failures, 1u);
  EXPECT_EQ(decodedProgress.cacheHits, 4u);

  ManifestBatchReply reply;
  reply.reportBytes = std::string("MirR\x01report\x00bytes", 16);
  std::string replyWire = encodeManifestBatchReply(reply);
  bio::Reader rr{replyWire, 0};
  ASSERT_TRUE(readHeader(rr, type, error)) << error;
  EXPECT_EQ(type, MessageType::manifestBatchReply);
  ManifestBatchReply decodedReply;
  ASSERT_TRUE(decodeManifestBatchReply(rr, decodedReply));
  EXPECT_EQ(decodedReply.reportBytes, reply.reportBytes);
}

TEST(ProtocolCodec, ManifestBatchDecoderRejectsBadScalarFields) {
  ManifestBatchRequest good;
  good.manifestBytes = "m";
  const std::string wire = encodeManifestBatchRequest(good);
  const std::size_t headerSize = [] {
    std::string h;
    beginMessage(h, MessageType::manifestBatch, kProtocolVersion);
    return h.size();
  }();

  auto decodeBody = [&](std::string bytes) {
    bio::Reader r{bytes, 0};
    MessageType type{};
    std::string error;
    EXPECT_TRUE(readHeader(r, type, error)) << error;
    ManifestBatchRequest decoded;
    return decodeManifestBatchRequest(r, decoded);
  };

  EXPECT_TRUE(decodeBody(wire));
  {
    std::string bad = wire;
    bad[headerSize + 1] = 2; // progress flag: only 0/1 are legal
    EXPECT_FALSE(decodeBody(bad));
  }
  {
    ManifestBatchRequest shard;
    shard.manifestBytes = "m";
    shard.shardIndex = 3;
    shard.shardCount = 3; // index must be < count
    EXPECT_FALSE(decodeBody(encodeManifestBatchRequest(shard)));
  }
  {
    ManifestBatchRequest zero;
    zero.manifestBytes = "m";
    zero.shardCount = 0; // at least one shard
    EXPECT_FALSE(decodeBody(encodeManifestBatchRequest(zero)));
  }
  EXPECT_FALSE(decodeBody(wire + "junk")); // trailing garbage
}

/// A corpus on disk plus its serialized manifest, for manifest-batch
/// round trips against an in-process daemon.
struct CorpusFixture {
  std::filesystem::path root;
  std::string manifestBytes;
  std::size_t count;

  explicit CorpusFixture(std::size_t sources) : count(sources) {
    static std::atomic<int> counter{0};
    root = std::filesystem::temp_directory_path() /
           ("mira_server_test_corpus_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter.fetch_add(1)));
    std::filesystem::remove_all(root);
    std::filesystem::create_directories(root);
    for (std::size_t i = 0; i < sources; ++i) {
      const std::string k = std::to_string(i);
      std::ofstream out(root / ("entry_" + k + ".mc"));
      out << "int entry_" + k + "(int n) {\n"
             "  int s = " + k + ";\n"
             "  for (int i = 0; i < n; i++) {\n"
             "    s = s + i * " + std::to_string(i + 2) + ";\n"
             "  }\n"
             "  return s;\n"
             "}\n";
    }
    corpus::Manifest manifest;
    std::string error;
    EXPECT_TRUE(corpus::buildManifest(root.string(), manifest, error))
        << error;
    manifestBytes = corpus::serializeManifest(manifest);
  }

  ~CorpusFixture() { std::filesystem::remove_all(root); }
};

TEST(AnalysisServerTest, ManifestBatchStreamsProgressAndServesWarmReruns) {
  DaemonFixture daemon;
  ASSERT_TRUE(daemon.started());
  CorpusFixture corpus(3);

  Client client;
  ASSERT_TRUE(client.connect(daemon.socketPath())) << client.lastError();

  // Cold run with progress streaming: frames are cumulative and the
  // last one accounts for the whole selection.
  std::vector<BatchProgress> frames;
  std::string reportBytes;
  ASSERT_TRUE(client.manifestBatch(
      corpus.manifestBytes, /*sinceBytes=*/"", /*root=*/"",
      driver::ShardSpec{}, core::MiraOptions(),
      [&](const BatchProgress &frame) { frames.push_back(frame); },
      reportBytes))
      << client.lastError();
  ASSERT_FALSE(frames.empty());
  for (std::size_t i = 1; i < frames.size(); ++i) {
    EXPECT_GE(frames[i].done, frames[i - 1].done);
    EXPECT_EQ(frames[i].total, frames[0].total);
  }
  EXPECT_EQ(frames.back().done, corpus.count);
  EXPECT_EQ(frames.back().total, corpus.count);

  driver::BatchReport report;
  std::string error;
  ASSERT_TRUE(driver::deserializeBatchReport(reportBytes, report, error))
      << error;
  ASSERT_EQ(report.entries.size(), corpus.count);
  EXPECT_EQ(report.entries[0].name, "entry_0.mc"); // manifest path order
  for (const auto &entry : report.entries)
    EXPECT_TRUE(entry.ok) << entry.name;
  EXPECT_EQ(report.stats.requests, corpus.count);
  EXPECT_EQ(report.stats.cacheHits, 0u);

  // Warm rerun on the same daemon, no progress requested: every entry
  // comes from the memory cache and no frame is streamed.
  std::string warmBytes;
  ASSERT_TRUE(client.manifestBatch(corpus.manifestBytes, "", "",
                                   driver::ShardSpec{}, core::MiraOptions(),
                                   /*onProgress=*/nullptr, warmBytes))
      << client.lastError();
  driver::BatchReport warm;
  ASSERT_TRUE(driver::deserializeBatchReport(warmBytes, warm, error)) << error;
  EXPECT_EQ(warm.stats.cacheHits, corpus.count);
  EXPECT_EQ(warm.stats.requests, corpus.count);
  for (std::size_t i = 0; i < warm.entries.size(); ++i)
    EXPECT_EQ(warm.entries[i].key, report.entries[i].key);

  // An unchanged --since baseline selects nothing: empty report, and
  // the connection stays usable afterwards.
  std::string emptyBytes;
  ASSERT_TRUE(client.manifestBatch(corpus.manifestBytes,
                                   /*sinceBytes=*/corpus.manifestBytes, "",
                                   driver::ShardSpec{}, core::MiraOptions(),
                                   nullptr, emptyBytes))
      << client.lastError();
  driver::BatchReport empty;
  ASSERT_TRUE(driver::deserializeBatchReport(emptyBytes, empty, error))
      << error;
  EXPECT_TRUE(empty.entries.empty());
  EXPECT_TRUE(client.ping()) << client.lastError();
}

TEST(AnalysisServerTest, ManifestBatchRejectsMalformedManifestBlob) {
  DaemonFixture daemon;
  ASSERT_TRUE(daemon.started());

  Client client;
  ASSERT_TRUE(client.connect(daemon.socketPath())) << client.lastError();
  std::string reportBytes;
  EXPECT_FALSE(client.manifestBatch("definitely not a manifest", "", "",
                                    driver::ShardSpec{}, core::MiraOptions(),
                                    nullptr, reportBytes));
  EXPECT_EQ(client.lastErrorKind(), Client::ErrorKind::daemon);
  EXPECT_NE(client.lastError().find("malformed manifest"), std::string::npos)
      << client.lastError();

  // Error replies close the connection; the daemon itself stays up.
  Client fresh;
  ASSERT_TRUE(fresh.connect(daemon.socketPath())) << fresh.lastError();
  EXPECT_TRUE(fresh.ping()) << fresh.lastError();
}

// ------------------------------------------- CLI client exit contract

/// Fork/exec the real mira-cli and return its exit code; stdout+stderr
/// land in `log`. The binary path is compiled in by CMake.
int runClientCli(const std::vector<std::string> &args,
                 const std::filesystem::path &log) {
  std::string command = MIRA_CLI_PATH;
  for (const std::string &arg : args)
    command += " '" + arg + "'";
  command += " > '" + log.string() + "' 2>&1";
  const int status = std::system(command.c_str());
  return status == -1 ? -1 : (WIFEXITED(status) ? WEXITSTATUS(status) : -1);
}

std::string slurp(const std::filesystem::path &path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

TEST(ClientCliExitContract, ConnectFailureIsExitThreeWithUnifiedDiagnostic) {
  // No daemon at the socket: the unified "mira-cli client:" diagnostic
  // on stderr and exit 3 ("no daemon there"), distinct from transport
  // failures so scripts can tell "start one" from "it died".
  const auto dir = std::filesystem::temp_directory_path();
  const auto log = dir / ("mira_server_test_exit3_" +
                          std::to_string(::getpid()) + ".log");
  const auto socket = dir / "mira_server_test_no_such_daemon.sock";
  std::filesystem::remove(socket);
  EXPECT_EQ(runClientCli({"client", "ping", "--socket", socket.string()},
                         log),
            3);
  const std::string output = slurp(log);
  EXPECT_NE(output.find("mira-cli client: "), std::string::npos) << output;
  std::filesystem::remove(log);
}

TEST(ClientCliExitContract, MidStreamEofIsExitFourWithUnifiedDiagnostic) {
  // A "daemon" that accepts, reads the request, and hangs up without
  // replying: the connection died mid-conversation — exit 4, same
  // unified stderr prefix.
  const auto dir = std::filesystem::temp_directory_path();
  const auto socket = dir / ("mira_server_test_eof_" +
                             std::to_string(::getpid()) + ".sock");
  const auto log = dir / ("mira_server_test_exit4_" +
                          std::to_string(::getpid()) + ".log");
  std::filesystem::remove(socket);
  std::string error;
  net::Socket listener = net::listenUnix(socket.string(), error);
  ASSERT_TRUE(listener.valid()) << error;
  std::thread fake([&] {
    net::Socket peer = net::acceptConnection(listener);
    if (!peer.valid())
      return;
    std::string request;
    net::readFrame(peer.fd(), request, kMaxFrameBytes);
    peer.close(); // EOF instead of a reply
  });
  EXPECT_EQ(runClientCli({"client", "ping", "--socket", socket.string()},
                         log),
            4);
  fake.join();
  const std::string output = slurp(log);
  EXPECT_NE(output.find("mira-cli client: "), std::string::npos) << output;
  std::filesystem::remove(socket);
  std::filesystem::remove(log);
}

TEST(AnalysisServerTest, RefusesSecondDaemonOnSamePath) {
  DaemonFixture daemon;
  ASSERT_TRUE(daemon.started());

  ServerOptions options;
  options.socketPath = daemon.socketPath();
  AnalysisServer second(options);
  std::string error;
  EXPECT_FALSE(second.start(error));
  EXPECT_NE(error.find("already listening"), std::string::npos) << error;

  // The loser must not have unlinked the winner's socket.
  Client client;
  EXPECT_TRUE(client.connect(daemon.socketPath())) << client.lastError();
  EXPECT_TRUE(client.ping()) << client.lastError();
}

} // namespace
} // namespace mira::server
