// Serving subsystem tests: wire-protocol codecs, the daemon's
// request/response loop, malformed and oversized frames, concurrent
// clients, clean shutdown with requests in flight — and the headline
// acceptance invariant: a daemon-served model payload is byte-identical
// to a one-shot analysis of the same (source, options), cold and warm.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <unistd.h>

#include "driver/batch.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/server.h"
#include "support/socket.h"
#include "workloads/workloads.h"

namespace mira::server {
namespace {

// ---------------------------------------------------------------- codecs

TEST(ProtocolCodec, AnalyzeRequestRoundTrips) {
  SourceItem item{"kernel.mc", "int f() { return 1; }"};
  std::string wire = encodeAnalyzeRequest(item, kOptionOptimize);

  bio::Reader r{wire, 0};
  MessageType type{};
  std::string error;
  ASSERT_TRUE(readHeader(r, type, error)) << error;
  EXPECT_EQ(type, MessageType::analyze);

  SourceItem decoded;
  std::uint8_t flags = 0;
  ASSERT_TRUE(decodeAnalyzeRequest(r, decoded, flags));
  EXPECT_EQ(decoded.name, item.name);
  EXPECT_EQ(decoded.source, item.source);
  EXPECT_EQ(flags, kOptionOptimize);
}

TEST(ProtocolCodec, BatchRequestRoundTrips) {
  std::vector<SourceItem> items{{"a", "src a"}, {"b", "src b"}, {"c", ""}};
  std::string wire = encodeBatchRequest(items, 0x7);

  bio::Reader r{wire, 0};
  MessageType type{};
  std::string error;
  ASSERT_TRUE(readHeader(r, type, error)) << error;
  EXPECT_EQ(type, MessageType::batch);

  std::vector<SourceItem> decoded;
  std::uint8_t flags = 0;
  ASSERT_TRUE(decodeBatchRequest(r, decoded, flags));
  EXPECT_EQ(flags, 0x7);
  ASSERT_EQ(decoded.size(), 3u);
  EXPECT_EQ(decoded[1].name, "b");
  EXPECT_EQ(decoded[2].source, "");
}

TEST(ProtocolCodec, RepliesRoundTrip) {
  AnalyzeReply reply;
  reply.cacheHit = true;
  reply.micros = 123456;
  reply.payload = std::string("\x01payload bytes\x00with nul", 23);
  std::string wire = encodeAnalyzeReply(reply);

  bio::Reader r{wire, 0};
  MessageType type{};
  std::string error;
  ASSERT_TRUE(readHeader(r, type, error)) << error;
  EXPECT_EQ(type, MessageType::analyzeReply);
  AnalyzeReply decoded;
  ASSERT_TRUE(decodeAnalyzeReply(r, decoded));
  EXPECT_TRUE(decoded.cacheHit);
  EXPECT_EQ(decoded.micros, 123456u);
  EXPECT_EQ(decoded.payload, reply.payload);

  ServerStats stats;
  stats.uptimeMicros = 1;
  stats.cacheHits = 42;
  stats.diskBytes = 1ull << 40;
  stats.threads = 8;
  std::string statsWire = encodeCacheStatsReply(stats);
  bio::Reader sr{statsWire, 0};
  ASSERT_TRUE(readHeader(sr, type, error)) << error;
  EXPECT_EQ(type, MessageType::cacheStatsReply);
  ServerStats decodedStats;
  ASSERT_TRUE(decodeCacheStatsReply(sr, decodedStats));
  EXPECT_EQ(decodedStats.cacheHits, 42u);
  EXPECT_EQ(decodedStats.diskBytes, 1ull << 40);
  EXPECT_EQ(decodedStats.threads, 8u);
}

TEST(ProtocolCodec, RejectsBadMagicAndVersion) {
  std::string wire = encodeEmptyMessage(MessageType::ping);
  {
    std::string bad = wire;
    bad[0] = 'X';
    bio::Reader r{bad, 0};
    MessageType type{};
    std::string error;
    EXPECT_FALSE(readHeader(r, type, error));
    EXPECT_NE(error.find("magic"), std::string::npos);
  }
  {
    std::string bad = wire;
    bad[4] = 99; // version field
    bio::Reader r{bad, 0};
    MessageType type{};
    std::string error;
    EXPECT_FALSE(readHeader(r, type, error));
    EXPECT_NE(error.find("version"), std::string::npos);
  }
  {
    std::string truncated = wire.substr(0, 6);
    bio::Reader r{truncated, 0};
    MessageType type{};
    std::string error;
    EXPECT_FALSE(readHeader(r, type, error));
  }
}

TEST(ProtocolCodec, RejectsTrailingGarbage) {
  SourceItem item{"a", "b"};
  std::string wire = encodeAnalyzeRequest(item, 0);
  wire += "junk";
  bio::Reader r{wire, 0};
  MessageType type{};
  std::string error;
  ASSERT_TRUE(readHeader(r, type, error));
  SourceItem decoded;
  std::uint8_t flags = 0;
  EXPECT_FALSE(decodeAnalyzeRequest(r, decoded, flags));
}

TEST(ProtocolCodec, OptionFlagsMatchRequestKeyInputs) {
  // The wire flags must cover exactly the options requestKey hashes:
  // packing then unpacking preserves every model-affecting toggle.
  core::MiraOptions options;
  options.compile.compiler.optimize = false;
  options.compile.compiler.vectorize = true;
  options.metrics.assumeBranchesTaken = false;
  core::MiraOptions round = unpackOptions(packOptions(options));
  EXPECT_EQ(round.compile.compiler.optimize, false);
  EXPECT_EQ(round.compile.compiler.vectorize, true);
  EXPECT_EQ(round.metrics.assumeBranchesTaken, false);
}

// ---------------------------------------------------------------- daemon

/// Starts an AnalysisServer on a fresh socket in a thread; tears it down
/// (via requestStop) on destruction if a test did not shut it down.
class DaemonFixture {
public:
  explicit DaemonFixture(ServerOptions options = {}) {
    static std::atomic<int> counter{0};
    socketPath_ = (std::filesystem::temp_directory_path() /
                   ("mira_server_test_" + std::to_string(::getpid()) + "_" +
                    std::to_string(counter.fetch_add(1)) + ".sock"))
                      .string();
    options.socketPath = socketPath_;
    if (options.threads == 0)
      options.threads = 2;
    server_ = std::make_unique<AnalysisServer>(options);
    std::string error;
    started_ = server_->start(error);
    EXPECT_TRUE(started_) << error;
    if (started_)
      thread_ = std::thread([this] { server_->serve(); });
  }

  ~DaemonFixture() {
    if (thread_.joinable()) {
      server_->requestStop();
      thread_.join();
    }
  }

  /// Join serve() without forcing a stop — for tests that shut the
  /// daemon down over the wire and assert it actually exits.
  void join() { thread_.join(); }

  AnalysisServer &server() { return *server_; }
  const std::string &socketPath() const { return socketPath_; }
  bool started() const { return started_; }

private:
  std::string socketPath_;
  std::unique_ptr<AnalysisServer> server_;
  std::thread thread_;
  bool started_ = false;
};

TEST(AnalysisServerTest, ColdAndWarmPayloadsAreByteIdenticalToOneShot) {
  DaemonFixture daemon;
  ASSERT_TRUE(daemon.started());

  // One-shot reference: what `mira-cli analyze` computes and what the
  // disk cache would store for this (source, options, name).
  const std::string name = "@fig5";
  const std::string &source = workloads::fig5Source();
  core::MiraOptions options;
  DiagnosticEngine diags;
  auto direct = core::analyzeSource(source, name, options, diags);
  ASSERT_TRUE(direct.has_value()) << diags.str();
  const std::string expected =
      driver::serializeOutcomePayload(&*direct, diags.str(), name);

  Client client;
  ASSERT_TRUE(client.connect(daemon.socketPath())) << client.lastError();

  ClientOutcome cold;
  ASSERT_TRUE(client.analyze(name, source, options, cold))
      << client.lastError();
  EXPECT_TRUE(cold.ok);
  EXPECT_FALSE(cold.cacheHit);
  EXPECT_EQ(cold.payload, expected) << "cold daemon payload diverges from "
                                       "one-shot analysis";

  ClientOutcome warm;
  ASSERT_TRUE(client.analyze(name, source, options, warm))
      << client.lastError();
  EXPECT_TRUE(warm.ok);
  EXPECT_TRUE(warm.cacheHit);
  EXPECT_EQ(warm.payload, expected) << "warm daemon payload diverges from "
                                       "one-shot analysis";

  // Zero recomputation on the warm repeat, per the server's own
  // counters: exactly one pipeline run for two requests.
  ServerStats stats;
  ASSERT_TRUE(client.cacheStats(stats)) << client.lastError();
  EXPECT_EQ(stats.sourcesAnalyzed, 2u);
  EXPECT_EQ(stats.computed, 1u);
  EXPECT_EQ(stats.cacheHits, 1u);
  EXPECT_EQ(stats.failures, 0u);
  EXPECT_EQ(stats.memoryEntries, 1u);
}

TEST(AnalysisServerTest, BatchKeepsInputOrderAndSharesCache) {
  DaemonFixture daemon;
  ASSERT_TRUE(daemon.started());

  Client client;
  ASSERT_TRUE(client.connect(daemon.socketPath())) << client.lastError();

  std::vector<SourceItem> items{
      {"first", workloads::dgemmSource()},
      {"second", "int broken("},
      {"third", workloads::fig5Source()},
      {"fourth", workloads::dgemmSource()}, // duplicate source of "first"
  };
  std::vector<ClientOutcome> outcomes;
  ASSERT_TRUE(client.analyzeBatch(items, core::MiraOptions(), outcomes))
      << client.lastError();
  ASSERT_EQ(outcomes.size(), 4u);
  EXPECT_TRUE(outcomes[0].ok);
  EXPECT_FALSE(outcomes[1].ok);
  EXPECT_FALSE(outcomes[1].diagnostics.empty());
  EXPECT_TRUE(outcomes[2].ok);
  EXPECT_TRUE(outcomes[3].ok);
  EXPECT_TRUE(outcomes[3].cacheHit); // same source as "first"
  // Payload names echo the producing request (docs/CACHING.md).
  EXPECT_EQ(outcomes[0].name, "first");

  ServerStats stats;
  ASSERT_TRUE(client.cacheStats(stats)) << client.lastError();
  EXPECT_EQ(stats.batchRequests, 1u);
  EXPECT_EQ(stats.sourcesAnalyzed, 4u);
  EXPECT_EQ(stats.cacheHits, 1u);
  EXPECT_EQ(stats.failures, 1u);
}

TEST(AnalysisServerTest, MalformedFrameGetsErrorReplyAndServerSurvives) {
  DaemonFixture daemon;
  ASSERT_TRUE(daemon.started());

  {
    // A well-framed message that is not a protocol message at all.
    std::string error;
    net::Socket raw = net::connectUnix(daemon.socketPath(), error);
    ASSERT_TRUE(raw.valid()) << error;
    ASSERT_TRUE(net::writeFrame(raw.fd(), "this is not a protocol message"));
    std::string reply;
    ASSERT_EQ(net::readFrame(raw.fd(), reply, kMaxFrameBytes),
              net::FrameStatus::ok);
    bio::Reader r{reply, 0};
    MessageType type{};
    std::string headerError;
    ASSERT_TRUE(readHeader(r, type, headerError)) << headerError;
    EXPECT_EQ(type, MessageType::error);
    std::string message;
    ASSERT_TRUE(decodeErrorReply(r, message));
    EXPECT_NE(message.find("magic"), std::string::npos) << message;
    // The daemon closes the connection after an error.
    EXPECT_EQ(net::readFrame(raw.fd(), reply, kMaxFrameBytes),
              net::FrameStatus::closed);
  }
  {
    // A truncated frame: the header promises more bytes than arrive.
    std::string error;
    net::Socket raw = net::connectUnix(daemon.socketPath(), error);
    ASSERT_TRUE(raw.valid()) << error;
    const char partial[] = {100, 0, 0, 0, 'x', 'y'}; // 100-byte promise
    ASSERT_EQ(::send(raw.fd(), partial, sizeof(partial), 0),
              static_cast<ssize_t>(sizeof(partial)));
    raw.close();
  }

  // After both abuses the daemon still answers normal requests. The
  // truncated connection is handled asynchronously, so poll briefly for
  // its error count instead of racing the handler.
  Client client;
  ASSERT_TRUE(client.connect(daemon.socketPath())) << client.lastError();
  EXPECT_TRUE(client.ping()) << client.lastError();
  ServerStats stats;
  for (int attempt = 0; attempt < 100; ++attempt) {
    ASSERT_TRUE(client.cacheStats(stats)) << client.lastError();
    if (stats.protocolErrors >= 2)
      break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(stats.protocolErrors, 2u);
}

TEST(AnalysisServerTest, OversizedFrameIsRejectedWithoutReadingBody) {
  ServerOptions options;
  options.maxFrameBytes = 1024; // tiny cap to keep the test cheap
  DaemonFixture daemon(options);
  ASSERT_TRUE(daemon.started());

  std::string error;
  net::Socket raw = net::connectUnix(daemon.socketPath(), error);
  ASSERT_TRUE(raw.valid()) << error;
  // Declare 16 MiB; send only the header. The daemon must answer from
  // the declaration alone.
  const unsigned char header[] = {0, 0, 0, 1};
  ASSERT_EQ(::send(raw.fd(), header, sizeof(header), 0),
            static_cast<ssize_t>(sizeof(header)));
  std::string reply;
  ASSERT_EQ(net::readFrame(raw.fd(), reply, kMaxFrameBytes),
            net::FrameStatus::ok);
  bio::Reader r{reply, 0};
  MessageType type{};
  std::string headerError;
  ASSERT_TRUE(readHeader(r, type, headerError)) << headerError;
  EXPECT_EQ(type, MessageType::error);
  std::string message;
  ASSERT_TRUE(decodeErrorReply(r, message));
  EXPECT_NE(message.find("exceeds"), std::string::npos) << message;

  Client client;
  ASSERT_TRUE(client.connect(daemon.socketPath())) << client.lastError();
  EXPECT_TRUE(client.ping()) << client.lastError();
}

TEST(AnalysisServerTest, ConcurrentClientsAllGetCorrectReplies) {
  ServerOptions options;
  options.threads = 4;
  DaemonFixture daemon(options);
  ASSERT_TRUE(daemon.started());

  constexpr int kClients = 4;
  constexpr int kRequestsEach = 3;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      Client client;
      if (!client.connect(daemon.socketPath())) {
        ++failures;
        return;
      }
      const std::string &source =
          c % 2 == 0 ? workloads::fig5Source() : workloads::dgemmSource();
      for (int i = 0; i < kRequestsEach; ++i) {
        ClientOutcome outcome;
        if (!client.analyze("client" + std::to_string(c % 2), source,
                            core::MiraOptions(), outcome) ||
            !outcome.ok)
          ++failures;
      }
    });
  }
  for (auto &thread : threads)
    thread.join();
  EXPECT_EQ(failures.load(), 0);

  // 12 requests over 2 distinct (source, options) pairs: exactly 2
  // pipeline runs, everything else served from the shared cache.
  Client client;
  ASSERT_TRUE(client.connect(daemon.socketPath())) << client.lastError();
  ServerStats stats;
  ASSERT_TRUE(client.cacheStats(stats)) << client.lastError();
  EXPECT_EQ(stats.sourcesAnalyzed,
            static_cast<std::uint64_t>(kClients * kRequestsEach));
  EXPECT_EQ(stats.computed, 2u);
  EXPECT_EQ(stats.cacheHits,
            static_cast<std::uint64_t>(kClients * kRequestsEach - 2));
}

TEST(AnalysisServerTest, ShutdownDrainsInFlightWorkAndRemovesSocket) {
  ServerOptions options;
  options.threads = 3;
  DaemonFixture daemon(options);
  ASSERT_TRUE(daemon.started());
  const std::string socketPath = daemon.socketPath();

  // An idle connection: its server-side reader is blocked in recv and
  // must be woken (EOF) by the shutdown, not waited on forever.
  std::string error;
  net::Socket idle = net::connectUnix(socketPath, error);
  ASSERT_TRUE(idle.valid()) << error;

  // A client with real work in flight around the shutdown.
  Client worker;
  ASSERT_TRUE(worker.connect(socketPath)) << worker.lastError();
  ClientOutcome outcome;
  ASSERT_TRUE(worker.analyze("@stream", workloads::streamSource(),
                             core::MiraOptions(), outcome))
      << worker.lastError();
  EXPECT_TRUE(outcome.ok);

  Client stopper;
  ASSERT_TRUE(stopper.connect(socketPath)) << stopper.lastError();
  ASSERT_TRUE(stopper.shutdownServer()) << stopper.lastError();

  // serve() must return on its own (the fixture would otherwise hang
  // here — a deadlocked drain fails the test by timeout).
  daemon.join();

  // The socket file is gone and new connections are refused.
  EXPECT_FALSE(std::filesystem::exists(socketPath));
  Client late;
  EXPECT_FALSE(late.connect(socketPath));

  // The idle connection saw EOF rather than hanging.
  std::string leftover;
  EXPECT_NE(net::readFrame(idle.fd(), leftover, kMaxFrameBytes),
            net::FrameStatus::ok);
}

TEST(AnalysisServerTest, DiskCacheServesAcrossDaemonRestarts) {
  const std::string cacheDir =
      (std::filesystem::temp_directory_path() / "mira_server_test_disk")
          .string();
  std::filesystem::remove_all(cacheDir);

  ServerOptions options;
  options.cacheDir = cacheDir;
  std::string coldPayload;
  {
    DaemonFixture daemon(options);
    ASSERT_TRUE(daemon.started());
    Client client;
    ASSERT_TRUE(client.connect(daemon.socketPath())) << client.lastError();
    ClientOutcome outcome;
    ASSERT_TRUE(client.analyze("@minife", workloads::minifeSource(),
                               core::MiraOptions(), outcome))
        << client.lastError();
    EXPECT_TRUE(outcome.ok);
    EXPECT_FALSE(outcome.cacheHit);
    coldPayload = outcome.payload;
  }
  {
    // A fresh daemon (fresh memory cache) must hit the disk level.
    DaemonFixture daemon(options);
    ASSERT_TRUE(daemon.started());
    Client client;
    ASSERT_TRUE(client.connect(daemon.socketPath())) << client.lastError();
    ClientOutcome outcome;
    ASSERT_TRUE(client.analyze("@minife", workloads::minifeSource(),
                               core::MiraOptions(), outcome))
        << client.lastError();
    EXPECT_TRUE(outcome.ok);
    EXPECT_TRUE(outcome.cacheHit);
    EXPECT_EQ(outcome.payload, coldPayload);

    ServerStats stats;
    ASSERT_TRUE(client.cacheStats(stats)) << client.lastError();
    EXPECT_EQ(stats.computed, 0u);
    EXPECT_EQ(stats.diskHits, 1u);
  }
  std::filesystem::remove_all(cacheDir);
}

TEST(AnalysisServerTest, RefusesToClobberANonSocketPath) {
  // Stale-socket reclaim must never extend to regular files: a typo'd
  // --socket pointing at user data fails loudly and leaves it intact.
  const std::string path =
      (std::filesystem::temp_directory_path() / "mira_server_test_notasock")
          .string();
  {
    std::ofstream out(path);
    out << "precious bytes";
  }
  std::string error;
  net::Socket listener = net::listenUnix(path, error);
  EXPECT_FALSE(listener.valid());
  EXPECT_NE(error.find("not a socket"), std::string::npos) << error;
  ASSERT_TRUE(std::filesystem::exists(path));
  {
    std::ifstream in(path);
    std::string contents;
    std::getline(in, contents);
    EXPECT_EQ(contents, "precious bytes");
  }
  std::filesystem::remove(path);
}

TEST(AnalysisServerTest, OverCapReplyDegradesToError) {
  // A reply the daemon cannot legally frame (tiny cap, real payload)
  // must come back as Error, not as an oversized frame the client
  // rejects mid-stream.
  ServerOptions options;
  options.maxFrameBytes = 64; // the request fits; the analyze reply
                              // (outcome payload + model) cannot
  DaemonFixture daemon(options);
  ASSERT_TRUE(daemon.started());

  std::string error;
  net::Socket raw = net::connectUnix(daemon.socketPath(), error);
  ASSERT_TRUE(raw.valid()) << error;
  SourceItem item{"f", "int f() { return 1; }"};
  ASSERT_TRUE(net::writeFrame(raw.fd(), encodeAnalyzeRequest(item, 0x7)));
  std::string reply;
  ASSERT_EQ(net::readFrame(raw.fd(), reply, kMaxFrameBytes),
            net::FrameStatus::ok);
  bio::Reader r{reply, 0};
  MessageType type{};
  std::string headerError;
  ASSERT_TRUE(readHeader(r, type, headerError)) << headerError;
  EXPECT_EQ(type, MessageType::error);
  std::string message;
  ASSERT_TRUE(decodeErrorReply(r, message));
  EXPECT_NE(message.find("frame cap"), std::string::npos) << message;
}

TEST(AnalysisServerTest, RefusesSecondDaemonOnSamePath) {
  DaemonFixture daemon;
  ASSERT_TRUE(daemon.started());

  ServerOptions options;
  options.socketPath = daemon.socketPath();
  AnalysisServer second(options);
  std::string error;
  EXPECT_FALSE(second.start(error));
  EXPECT_NE(error.find("already listening"), std::string::npos) << error;

  // The loser must not have unlinked the winner's socket.
  Client client;
  EXPECT_TRUE(client.connect(daemon.socketPath())) << client.lastError();
  EXPECT_TRUE(client.ping()) << client.lastError();
}

} // namespace
} // namespace mira::server
