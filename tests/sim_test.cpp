#include <gtest/gtest.h>

#include "core/compiler.h"
#include "core/mira.h"

namespace mira::sim {
namespace {

using core::CompiledProgram;
using core::CompileOptions;

std::unique_ptr<CompiledProgram> compile(const std::string &src,
                                         bool vectorize = true) {
  DiagnosticEngine diags;
  CompileOptions options;
  options.compiler.vectorize = vectorize;
  auto program = core::compileProgram(src, "sim_test.mc", options, diags);
  EXPECT_NE(program, nullptr) << diags.str();
  return program;
}

SimResult runFn(const CompiledProgram &program, const std::string &fn,
                const std::vector<Value> &args, bool ff = false) {
  SimOptions options;
  options.fastForward = ff;
  return core::simulate(program, fn, args, options);
}

// ------------------------------------------------------------- semantics

TEST(Simulator, ArithmeticAndReturn) {
  auto p = compile("int f(int a, int b) { return a * b + 7; }");
  auto r = runFn(*p, "f", {Value::ofInt(6), Value::ofInt(9)});
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.returnValue.i, 61);
}

TEST(Simulator, FloatingPoint) {
  auto p = compile("double f(double x) { return sqrt(x) * 2.0; }");
  auto r = runFn(*p, "f", {Value::ofDouble(16.0)});
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_DOUBLE_EQ(r.returnValue.f, 8.0);
}

TEST(Simulator, LoopsAndArrays) {
  auto p = compile("double f(int n) {\n"
                   "  double a[n];\n"
                   "  for (int i = 0; i < n; i++) {\n"
                   "    a[i] = i * 1.5;\n"
                   "  }\n"
                   "  double s = 0.0;\n"
                   "  for (int i = 0; i < n; i++) {\n"
                   "    s = s + a[i];\n"
                   "  }\n"
                   "  return s;\n"
                   "}");
  auto r = runFn(*p, "f", {Value::ofInt(10)});
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_DOUBLE_EQ(r.returnValue.f, 1.5 * 45);
}

TEST(Simulator, VectorizedLoopComputesSameResult) {
  const char *src = "double f(int n) {\n"
                    "  double a[n];\n"
                    "  double b[n];\n"
                    "  for (int i = 0; i < n; i++) {\n"
                    "    a[i] = i + 1.0;\n"
                    "    b[i] = 2.0;\n"
                    "  }\n"
                    "  double s = 0.0;\n"
                    "  for (int i = 0; i < n; i++) {\n"
                    "    s = s + a[i] * b[i];\n"
                    "  }\n"
                    "  return s;\n"
                    "}";
  auto vec = compile(src, true);
  auto scalar = compile(src, false);
  for (int n : {0, 1, 2, 3, 7, 16, 33}) {
    auto rv = runFn(*vec, "f", {Value::ofInt(n)});
    auto rs = runFn(*scalar, "f", {Value::ofInt(n)});
    ASSERT_TRUE(rv.ok) << rv.error;
    ASSERT_TRUE(rs.ok) << rs.error;
    EXPECT_DOUBLE_EQ(rv.returnValue.f, rs.returnValue.f) << "n=" << n;
  }
}

TEST(Simulator, VectorizationReducesFPInstructionCount) {
  const char *src = "void f(double* a, double* b, int n) {\n"
                    "  for (int i = 0; i < n; i++) {\n"
                    "    a[i] = a[i] + b[i];\n"
                    "  }\n"
                    "}\n"
                    "double g(int n) {\n"
                    "  double a[n];\n"
                    "  double b[n];\n"
                    "  for (int i = 0; i < n; i++) {\n"
                    "    a[i] = 1.0;\n"
                    "    b[i] = 2.0;\n"
                    "  }\n"
                    "  f(a, b, n);\n"
                    "  return a[0];\n"
                    "}";
  auto vec = compile(src, true);
  auto scalar = compile(src, false);
  auto rv = runFn(*vec, "g", {Value::ofInt(1000)});
  auto rs = runFn(*scalar, "g", {Value::ofInt(1000)});
  ASSERT_TRUE(rv.ok && rs.ok);
  // Packed ADDPD retires one instruction per two adds: FPI roughly halves
  // in f (init loop is vectorized in both counts too, so compare g).
  EXPECT_LT(rv.fpiOf("f"), 0.6 * rs.fpiOf("f"));
  // FLOPs are identical work regardless of packing.
  EXPECT_EQ(rv.functions.at("f").inclusive.flops,
            rs.functions.at("f").inclusive.flops);
}

TEST(Simulator, ClassesAndMethodCalls) {
  auto p = compile("class Acc {\n"
                   "public:\n"
                   "  double total;\n"
                   "  void add(double v) { total = total + v; }\n"
                   "  double get() { return total; }\n"
                   "};\n"
                   "double f() {\n"
                   "  Acc acc;\n"
                   "  acc.total = 0.0;\n"
                   "  acc.add(2.5);\n"
                   "  acc.add(4.0);\n"
                   "  return acc.get();\n"
                   "}");
  auto r = runFn(*p, "f", {});
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_DOUBLE_EQ(r.returnValue.f, 6.5);
}

TEST(Simulator, OperatorCallMethod) {
  auto p = compile("class Scaler {\n"
                   "public:\n"
                   "  double factor;\n"
                   "  double operator()(double x) { return x * factor; }\n"
                   "};\n"
                   "double f() {\n"
                   "  Scaler s;\n"
                   "  s.factor = 3.0;\n"
                   "  return s(7.0);\n"
                   "}");
  auto r = runFn(*p, "f", {});
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_DOUBLE_EQ(r.returnValue.f, 21.0);
}

TEST(Simulator, BranchesAndModulo) {
  auto p = compile("int f(int n) {\n"
                   "  int count = 0;\n"
                   "  for (int i = 1; i <= n; i++) {\n"
                   "    if (i % 3 == 0) {\n"
                   "      count = count + 1;\n"
                   "    } else {\n"
                   "      count = count + 10;\n"
                   "    }\n"
                   "  }\n"
                   "  return count;\n"
                   "}");
  auto r = runFn(*p, "f", {Value::ofInt(9)});
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.returnValue.i, 3 + 6 * 10);
}

TEST(Simulator, WhileLoop) {
  auto p = compile("int f(int n) {\n"
                   "  int i = 0;\n"
                   "  while (n > 1) {\n"
                   "    if (n % 2 == 0) { n = n / 2; } else { n = 3 * n + 1; }\n"
                   "    i = i + 1;\n"
                   "  }\n"
                   "  return i;\n"
                   "}");
  auto r = runFn(*p, "f", {Value::ofInt(6)});
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.returnValue.i, 8); // 6 3 10 5 16 8 4 2 1
}

TEST(Simulator, ShortCircuitEvaluation) {
  auto p = compile("int f(int a, int b) {\n"
                   "  int r = 0;\n"
                   "  if (a > 0 && b > 0) { r = 1; }\n"
                   "  if (a > 0 || b > 0) { r = r + 2; }\n"
                   "  return r;\n"
                   "}");
  auto r1 = runFn(*p, "f", {Value::ofInt(1), Value::ofInt(1)});
  EXPECT_EQ(r1.returnValue.i, 3);
  auto r2 = runFn(*p, "f", {Value::ofInt(1), Value::ofInt(-1)});
  EXPECT_EQ(r2.returnValue.i, 2);
  auto r3 = runFn(*p, "f", {Value::ofInt(-1), Value::ofInt(-1)});
  EXPECT_EQ(r3.returnValue.i, 0);
}

TEST(Simulator, ExternCallsChargeHiddenCost) {
  auto p = compile("void f(double x) { mc_print(x); }");
  auto r = runFn(*p, "f", {Value::ofDouble(1.5)});
  ASSERT_TRUE(r.ok);
  ASSERT_EQ(r.printed.size(), 1u);
  EXPECT_DOUBLE_EQ(r.printed[0], 1.5);
  // The library call retires FP instructions the static model cannot see.
  EXPECT_GT(r.total.fpInstructions, 0u);
  EXPECT_GT(r.total.totalInstructions, 50u);
}

TEST(Simulator, DivisionByZeroIsAnError) {
  auto p = compile("int f(int a) { return 10 / a; }");
  auto r = runFn(*p, "f", {Value::ofInt(0)});
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("division by zero"), std::string::npos);
}

TEST(Simulator, InstructionBudgetStopsRunaways) {
  auto p = compile("int f() {\n"
                   "  int i = 0;\n"
                   "  while (i < 1000000000) { i = i + 1; }\n"
                   "  return i;\n"
                   "}");
  SimOptions options;
  options.maxInstructions = 10000;
  auto r = core::simulate(*p, "f", {}, options);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("budget"), std::string::npos);
}

TEST(Simulator, InclusiveCountsContainCallees) {
  auto p = compile("double leaf(double x) { return x * x; }\n"
                   "double root(double x) { return leaf(x) + leaf(x); }");
  auto r = runFn(*p, "root", {Value::ofDouble(2.0)});
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.functions.at("leaf").calls, 2u);
  EXPECT_GE(r.functions.at("root").inclusive.totalInstructions,
            r.functions.at("leaf").inclusive.totalInstructions);
  EXPECT_DOUBLE_EQ(r.returnValue.f, 8.0);
}

// ---------------------------------------------------------- fast-forward

TEST(FastForward, MatchesExactCountsOnAnnotatedLoops) {
  const char *src = "double f(int n) {\n"
                    "  double a[n];\n"
                    "  #pragma @Simulate {ff:yes}\n"
                    "  for (int i = 0; i < n; i++) {\n"
                    "    a[i] = 1.0 * i;\n"
                    "  }\n"
                    "  double s = 0.0;\n"
                    "  #pragma @Simulate {ff:yes}\n"
                    "  for (int i = 0; i < n; i++) {\n"
                    "    s = s + a[i];\n"
                    "  }\n"
                    "  return s;\n"
                    "}";
  auto p = compile(src);
  for (int n : {0, 1, 2, 5, 17, 64}) {
    auto exact = runFn(*p, "f", {Value::ofInt(n)}, false);
    auto ff = runFn(*p, "f", {Value::ofInt(n)}, true);
    ASSERT_TRUE(exact.ok && ff.ok) << exact.error << ff.error;
    EXPECT_EQ(exact.total.totalInstructions, ff.total.totalInstructions)
        << "n=" << n;
    EXPECT_EQ(exact.total.fpInstructions, ff.total.fpInstructions)
        << "n=" << n;
    for (std::size_t c = 0; c < isa::kNumCategories; ++c)
      EXPECT_EQ(exact.total.categories[c], ff.total.categories[c])
          << "n=" << n << " category " << c;
  }
}

TEST(FastForward, UnannotatedLoopsRunExactly) {
  // Without the annotation, fast-forward mode must not change anything.
  auto p = compile("double f(int n) {\n"
                   "  double s = 0.0;\n"
                   "  for (int i = 0; i < n; i++) {\n"
                   "    s = s + 1.0;\n"
                   "  }\n"
                   "  return s;\n"
                   "}");
  auto exact = runFn(*p, "f", {Value::ofInt(23)}, false);
  auto ff = runFn(*p, "f", {Value::ofInt(23)}, true);
  ASSERT_TRUE(exact.ok && ff.ok);
  EXPECT_DOUBLE_EQ(ff.returnValue.f, 23.0); // executed for real
  EXPECT_EQ(exact.total.totalInstructions, ff.total.totalInstructions);
}

} // namespace
} // namespace mira::sim
