// Adversarial protocol tests: seeded property/fuzz coverage of every
// wire codec and of the live server's frame decoder.
//
// Three layers, all deterministic (fixed seeds, printed on entry so a
// failure reproduces):
//   1. round-trip properties — randomized v1/v2 messages encode then
//      decode to equal values;
//   2. decoder mutation fuzz — truncations, bit flips, and appended
//      garbage over valid frames (and over the cache/manifest/report
//      payload codecs) must return false or decode cleanly, never
//      crash or read out of bounds (the ASan/UBSan CI job is the
//      memory referee);
//   3. a live AnalysisServer fed malformed, truncated, and oversized
//      frames must answer Error-then-close for everything it can parse
//      a length prefix from, never wedge, and never leak a file
//      descriptor (checked against /proc/self/fd).
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <unistd.h>

#include "corpus/manifest.h"
#include "driver/batch.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/server.h"
#include "support/socket.h"

namespace mira::server {
namespace {

constexpr std::uint64_t kSeed = 0x4d72695046757a7aull; // "MriPFuzz"

std::string randomBytes(std::mt19937_64 &rng, std::size_t maxLength) {
  std::string out;
  const std::size_t length = rng() % (maxLength + 1);
  out.reserve(length);
  for (std::size_t i = 0; i < length; ++i)
    out.push_back(static_cast<char>(rng() & 0xff));
  return out;
}

SourceItem randomItem(std::mt19937_64 &rng) {
  return SourceItem{randomBytes(rng, 40), randomBytes(rng, 200)};
}

// ------------------------------------------------- round-trip layer

TEST(ProtocolFuzz, RandomRequestsRoundTripBothVersions) {
  std::mt19937_64 rng(kSeed);
  for (int i = 0; i < 200; ++i) {
    const std::uint32_t version = (rng() & 1) ? 2u : 1u;
    const std::uint8_t flags = static_cast<std::uint8_t>(rng() & 0x7);

    {
      const SourceItem item = randomItem(rng);
      const std::string wire = encodeAnalyzeRequest(item, flags, version);
      bio::Reader r{wire, 0};
      MessageType type{};
      std::uint32_t decodedVersion = 0;
      std::string error;
      ASSERT_TRUE(readHeader(r, type, decodedVersion, error)) << error;
      EXPECT_EQ(type, MessageType::analyze);
      EXPECT_EQ(decodedVersion, version);
      SourceItem decoded;
      std::uint8_t decodedFlags = 0;
      ASSERT_TRUE(decodeAnalyzeRequest(r, decoded, decodedFlags));
      EXPECT_EQ(decoded.name, item.name);
      EXPECT_EQ(decoded.source, item.source);
      EXPECT_EQ(decodedFlags, flags);
    }
    {
      std::vector<SourceItem> items;
      const std::size_t count = rng() % 5;
      for (std::size_t j = 0; j < count; ++j)
        items.push_back(randomItem(rng));
      const std::string wire = encodeBatchRequest(items, flags, version);
      bio::Reader r{wire, 0};
      MessageType type{};
      std::string error;
      ASSERT_TRUE(readHeader(r, type, error));
      std::vector<SourceItem> decoded;
      std::uint8_t decodedFlags = 0;
      ASSERT_TRUE(decodeBatchRequest(r, decoded, decodedFlags));
      ASSERT_EQ(decoded.size(), items.size());
      for (std::size_t j = 0; j < items.size(); ++j) {
        EXPECT_EQ(decoded[j].name, items[j].name);
        EXPECT_EQ(decoded[j].source, items[j].source);
      }
    }
    {
      core::SimulationArgs sim;
      sim.function = randomBytes(rng, 30);
      sim.options.fastForward = (rng() & 1) != 0;
      sim.options.maxInstructions = rng();
      const std::size_t argc = rng() % 4;
      for (std::size_t j = 0; j < argc; ++j) {
        sim::Value value;
        value.i = static_cast<std::int64_t>(rng());
        value.f = static_cast<double>(rng()) / 7.0;
        value.f2 = static_cast<double>(rng()) / 3.0;
        sim.args.push_back(value);
      }
      const SourceItem item = randomItem(rng);
      const std::string wire = encodeSimulateRequest(item, flags, sim);
      bio::Reader r{wire, 0};
      MessageType type{};
      std::string error;
      ASSERT_TRUE(readHeader(r, type, error));
      SourceItem decodedItem;
      std::uint8_t decodedFlags = 0;
      core::SimulationArgs decodedSim;
      ASSERT_TRUE(decodeSimulateRequest(r, decodedItem, decodedFlags,
                                        decodedSim));
      EXPECT_EQ(decodedSim.function, sim.function);
      EXPECT_EQ(decodedSim.options.fastForward, sim.options.fastForward);
      EXPECT_EQ(decodedSim.options.maxInstructions,
                sim.options.maxInstructions);
      ASSERT_EQ(decodedSim.args.size(), sim.args.size());
      for (std::size_t j = 0; j < sim.args.size(); ++j) {
        EXPECT_EQ(decodedSim.args[j].i, sim.args[j].i);
        EXPECT_EQ(decodedSim.args[j].f, sim.args[j].f);
      }
    }
  }
}

TEST(ProtocolFuzz, RandomBusyAndMetricsRepliesRoundTrip) {
  std::mt19937_64 rng(kSeed ^ 0x5);
  for (int i = 0; i < 200; ++i) {
    {
      BusyReply busy;
      busy.retryAfterMillis = static_cast<std::uint32_t>(rng());
      const std::string wire = encodeBusyReply(busy);
      bio::Reader r{wire, 0};
      MessageType type{};
      std::string error;
      ASSERT_TRUE(readHeader(r, type, error)) << error;
      EXPECT_EQ(type, MessageType::busyReply);
      BusyReply decoded;
      ASSERT_TRUE(decodeBusyReply(r, decoded));
      EXPECT_EQ(decoded.retryAfterMillis, busy.retryAfterMillis);
    }
    {
      std::vector<MetricSample> samples;
      const std::size_t count = rng() % 24;
      for (std::size_t j = 0; j < count; ++j)
        samples.push_back({randomBytes(rng, 60), rng()});
      const std::string wire = encodeMetricsReply(samples);
      bio::Reader r{wire, 0};
      MessageType type{};
      std::string error;
      ASSERT_TRUE(readHeader(r, type, error)) << error;
      EXPECT_EQ(type, MessageType::metricsReply);
      std::vector<MetricSample> decoded;
      ASSERT_TRUE(decodeMetricsReply(r, decoded));
      ASSERT_EQ(decoded.size(), samples.size());
      for (std::size_t j = 0; j < samples.size(); ++j) {
        EXPECT_EQ(decoded[j].name, samples[j].name);
        EXPECT_EQ(decoded[j].value, samples[j].value);
      }
    }
    {
      // The metrics request itself is an empty-body v2 message.
      const std::string wire = encodeMetricsRequest();
      bio::Reader r{wire, 0};
      MessageType type{};
      std::string error;
      ASSERT_TRUE(readHeader(r, type, error)) << error;
      EXPECT_EQ(type, MessageType::metrics);
      EXPECT_EQ(r.remaining(), 0u);
    }
  }
}

TEST(ProtocolFuzz, RandomManifestDiffMessagesRoundTrip) {
  std::mt19937_64 rng(kSeed ^ 0x1);
  for (int i = 0; i < 100; ++i) {
    const std::string oldBytes = randomBytes(rng, 300);
    const std::string newBytes = randomBytes(rng, 300);
    const std::string wire = encodeManifestDiffRequest(oldBytes, newBytes);
    bio::Reader r{wire, 0};
    MessageType type{};
    std::string error;
    ASSERT_TRUE(readHeader(r, type, error));
    EXPECT_EQ(type, MessageType::manifestDiff);
    std::string decodedOld, decodedNew;
    ASSERT_TRUE(decodeManifestDiffRequest(r, decodedOld, decodedNew));
    EXPECT_EQ(decodedOld, oldBytes);
    EXPECT_EQ(decodedNew, newBytes);

    ManifestDiffReply reply;
    const std::size_t added = rng() % 4, changed = rng() % 4,
                      removed = rng() % 4;
    for (std::size_t j = 0; j < added; ++j)
      reply.added.push_back({randomBytes(rng, 30), rng(), rng() % 1000});
    for (std::size_t j = 0; j < changed; ++j)
      reply.changed.push_back({randomBytes(rng, 30), rng(), rng() % 1000});
    for (std::size_t j = 0; j < removed; ++j)
      reply.removed.push_back(randomBytes(rng, 30));
    const std::string replyWire = encodeManifestDiffReply(reply);
    bio::Reader rr{replyWire, 0};
    ASSERT_TRUE(readHeader(rr, type, error));
    EXPECT_EQ(type, MessageType::manifestDiffReply);
    ManifestDiffReply decoded;
    ASSERT_TRUE(decodeManifestDiffReply(rr, decoded));
    ASSERT_EQ(decoded.added.size(), reply.added.size());
    ASSERT_EQ(decoded.changed.size(), reply.changed.size());
    ASSERT_EQ(decoded.removed.size(), reply.removed.size());
    for (std::size_t j = 0; j < reply.added.size(); ++j) {
      EXPECT_EQ(decoded.added[j].path, reply.added[j].path);
      EXPECT_EQ(decoded.added[j].contentHash, reply.added[j].contentHash);
    }
  }
}

TEST(ProtocolFuzz, RandomManifestBatchMessagesRoundTrip) {
  std::mt19937_64 rng(kSeed ^ 0x6);
  for (int i = 0; i < 200; ++i) {
    ManifestBatchRequest request;
    request.flags = static_cast<std::uint8_t>(rng() & 0x7);
    request.progress = (rng() & 1) != 0;
    request.shardCount = 1 + static_cast<std::uint32_t>(rng() % 16);
    request.shardIndex = static_cast<std::uint32_t>(rng()) % request.shardCount;
    request.root = randomBytes(rng, 60);
    request.manifestBytes = randomBytes(rng, 400);
    request.sinceBytes = randomBytes(rng, 400);
    const std::string wire = encodeManifestBatchRequest(request);
    bio::Reader r{wire, 0};
    MessageType type{};
    std::uint32_t version = 0;
    std::string error;
    ASSERT_TRUE(readHeader(r, type, version, error)) << error;
    EXPECT_EQ(type, MessageType::manifestBatch);
    EXPECT_EQ(version, kProtocolVersion);
    ManifestBatchRequest decoded;
    ASSERT_TRUE(decodeManifestBatchRequest(r, decoded));
    EXPECT_EQ(decoded.flags, request.flags);
    EXPECT_EQ(decoded.progress, request.progress);
    EXPECT_EQ(decoded.shardIndex, request.shardIndex);
    EXPECT_EQ(decoded.shardCount, request.shardCount);
    EXPECT_EQ(decoded.root, request.root);
    EXPECT_EQ(decoded.manifestBytes, request.manifestBytes);
    EXPECT_EQ(decoded.sinceBytes, request.sinceBytes);

    BatchProgress progress;
    progress.done = static_cast<std::uint32_t>(rng());
    progress.total = static_cast<std::uint32_t>(rng());
    progress.failures = static_cast<std::uint32_t>(rng());
    progress.cacheHits = static_cast<std::uint32_t>(rng());
    const std::string progressWire = encodeBatchProgress(progress);
    bio::Reader pr{progressWire, 0};
    ASSERT_TRUE(readHeader(pr, type, error)) << error;
    EXPECT_EQ(type, MessageType::batchProgress);
    BatchProgress decodedProgress;
    ASSERT_TRUE(decodeBatchProgress(pr, decodedProgress));
    EXPECT_EQ(decodedProgress.done, progress.done);
    EXPECT_EQ(decodedProgress.total, progress.total);
    EXPECT_EQ(decodedProgress.failures, progress.failures);
    EXPECT_EQ(decodedProgress.cacheHits, progress.cacheHits);

    ManifestBatchReply reply;
    reply.reportBytes = randomBytes(rng, 600);
    const std::string replyWire = encodeManifestBatchReply(reply);
    bio::Reader rr{replyWire, 0};
    ASSERT_TRUE(readHeader(rr, type, error)) << error;
    EXPECT_EQ(type, MessageType::manifestBatchReply);
    ManifestBatchReply decodedReply;
    ASSERT_TRUE(decodeManifestBatchReply(rr, decodedReply));
    EXPECT_EQ(decodedReply.reportBytes, reply.reportBytes);
  }
}

// --------------------------------------------- decoder mutation fuzz

/// Apply one random mutation: truncate, flip a byte, or append junk.
std::string mutate(std::mt19937_64 &rng, const std::string &bytes) {
  std::string out = bytes;
  switch (rng() % 3) {
  case 0:
    if (!out.empty())
      out.resize(rng() % out.size());
    break;
  case 1:
    if (!out.empty())
      out[rng() % out.size()] ^= static_cast<char>(1u << (rng() % 8));
    break;
  default:
    out += randomBytes(rng, 16);
    break;
  }
  return out;
}

/// Run the server's own dispatch order over one (possibly hostile)
/// message: header first, then the type-specific body decoder. The
/// property is simply "terminates with a verdict, no crash/UB".
void decodeLikeTheServer(const std::string &message) {
  bio::Reader r{message, 0};
  MessageType type{};
  std::uint32_t version = 0;
  std::string error;
  if (!readHeader(r, type, version, error))
    return;
  SourceItem item;
  std::uint8_t flags = 0;
  switch (type) {
  case MessageType::analyze:
    (void)decodeAnalyzeRequest(r, item, flags);
    break;
  case MessageType::batch: {
    std::vector<SourceItem> items;
    (void)decodeBatchRequest(r, items, flags);
    break;
  }
  case MessageType::coverage:
    (void)decodeCoverageRequest(r, item, flags);
    break;
  case MessageType::simulate: {
    core::SimulationArgs sim;
    (void)decodeSimulateRequest(r, item, flags, sim);
    break;
  }
  case MessageType::manifestDiff: {
    std::string oldBytes, newBytes;
    if (decodeManifestDiffRequest(r, oldBytes, newBytes)) {
      corpus::Manifest manifest;
      std::string manifestError;
      (void)corpus::deserializeManifest(oldBytes, manifest, manifestError);
      (void)corpus::deserializeManifest(newBytes, manifest, manifestError);
    }
    break;
  }
  case MessageType::manifestBatch: {
    ManifestBatchRequest request;
    if (decodeManifestBatchRequest(r, request)) {
      // The server validates both blobs before touching the compute
      // pool; a mutated manifest must fail cleanly, never crash.
      corpus::Manifest manifest;
      std::string manifestError;
      (void)corpus::deserializeManifest(request.manifestBytes, manifest,
                                        manifestError);
      if (!request.sinceBytes.empty())
        (void)corpus::deserializeManifest(request.sinceBytes, manifest,
                                          manifestError);
    }
    break;
  }
  // Reply types: mutated server frames exercise the client decoders.
  case MessageType::batchProgress: {
    BatchProgress progress;
    (void)decodeBatchProgress(r, progress);
    break;
  }
  case MessageType::manifestBatchReply: {
    ManifestBatchReply reply;
    (void)decodeManifestBatchReply(r, reply);
    break;
  }
  case MessageType::busyReply: {
    BusyReply busy;
    (void)decodeBusyReply(r, busy);
    break;
  }
  case MessageType::metricsReply: {
    std::vector<MetricSample> samples;
    (void)decodeMetricsReply(r, samples);
    break;
  }
  default:
    break;
  }
}

TEST(ProtocolFuzz, MutatedFramesNeverCrashTheDecoders) {
  std::mt19937_64 rng(kSeed ^ 0x2);
  core::SimulationArgs sim;
  sim.function = "f";
  sim.args.push_back(sim::Value::ofInt(3));
  const std::vector<std::string> seeds = {
      encodeAnalyzeRequest({"n", "int f() { return 1; }"}, 0x3),
      encodeAnalyzeRequest({"n", "src"}, 0x1, 1),
      encodeBatchRequest({{"a", "sa"}, {"b", "sb"}}, 0x7),
      encodeCoverageRequest({"c", "sc"}, 0x2),
      encodeSimulateRequest({"s", "ss"}, 0x1, sim),
      encodeManifestDiffRequest(corpus::serializeManifest({}),
                                corpus::serializeManifest({})),
      encodeEmptyMessage(MessageType::ping),
      encodeEmptyMessage(MessageType::cacheStats),
      encodeEmptyMessage(MessageType::metrics),
      [] {
        ManifestBatchRequest request;
        request.flags = 0x3;
        request.progress = true;
        request.shardIndex = 1;
        request.shardCount = 3;
        request.root = "/tmp/corpus";
        request.manifestBytes = corpus::serializeManifest({});
        return encodeManifestBatchRequest(request);
      }(),
      encodeBatchProgress({3, 9, 1, 2}),
      [] {
        driver::BatchReport fuzzReport;
        fuzzReport.entries.push_back({"seed.mc", 0xfeed, true});
        fuzzReport.stats.requests = 1;
        ManifestBatchReply reply;
        reply.reportBytes = driver::serializeBatchReport(fuzzReport);
        return encodeManifestBatchReply(reply);
      }(),
      encodeBusyReply({12345}),
      encodeMetricsReply({{"server_requests_served_total", 7},
                          {"server_uptime_micros", 1ull << 40}}),
  };
  for (int i = 0; i < 3000; ++i) {
    std::string bytes = seeds[rng() % seeds.size()];
    const int mutations = 1 + static_cast<int>(rng() % 3);
    for (int m = 0; m < mutations; ++m)
      bytes = mutate(rng, bytes);
    decodeLikeTheServer(bytes);
  }
  // Reaching here alive (and ASan-clean in the sanitizer job) is the
  // assertion; add one positive control so the test can't rot into
  // never exercising the happy path.
  decodeLikeTheServer(seeds[0]);
  SUCCEED();
}

TEST(ProtocolFuzz, MutatedPayloadCodecsNeverCrash) {
  std::mt19937_64 rng(kSeed ^ 0x3);
  // Seed corpus: a v1 payload, a failure payload, a manifest, a report.
  const std::string v1 =
      driver::serializeOutcomePayloadV1(nullptr, "diag", "producer");
  corpus::Manifest manifest;
  manifest.root = "r";
  manifest.entries = {{"a.mc", 1, 2}, {"b.mc", 3, 4}};
  driver::BatchReport report;
  report.entries.push_back({"a.mc", 0x1234, true});
  report.stats.requests = 1;
  const std::vector<std::string> seeds = {
      v1,
      driver::serializeArtifactPayload(nullptr, nullptr, "d", "p"),
      corpus::serializeManifest(manifest),
      driver::serializeBatchReport(report),
  };
  for (int i = 0; i < 3000; ++i) {
    std::string bytes = mutate(rng, seeds[rng() % seeds.size()]);
    {
      std::shared_ptr<const core::AnalysisResult> analysis;
      std::string diagnostics, producer;
      (void)driver::deserializeOutcomePayloadV1(bytes, analysis, diagnostics,
                                                producer);
    }
    {
      std::shared_ptr<const core::AnalysisResult> analysis;
      std::optional<sema::LoopCoverage> coverage;
      std::string diagnostics, producer;
      (void)driver::deserializeArtifactPayload(bytes, analysis, coverage,
                                               diagnostics, producer);
    }
    {
      corpus::Manifest decoded;
      std::string error;
      (void)corpus::deserializeManifest(bytes, decoded, error);
    }
    {
      driver::BatchReport decoded;
      std::string error;
      (void)driver::deserializeBatchReport(bytes, decoded, error);
    }
  }
  SUCCEED();
}

// ------------------------------------------------- live-server layer

namespace fs = std::filesystem;

std::size_t openFdCount() {
  std::size_t count = 0;
  std::error_code ec;
  for (const auto &entry : fs::directory_iterator("/proc/self/fd", ec)) {
    (void)entry;
    ++count;
  }
  return count;
}

struct ServerFixture {
  ServerOptions options;
  AnalysisServer server;
  std::thread thread;

  explicit ServerFixture(std::uint32_t maxFrameBytes = 1 << 16)
      : options(makeOptions(maxFrameBytes)), server(options) {
    std::string error;
    if (!server.start(error)) {
      ADD_FAILURE() << "server start failed: " << error;
      return;
    }
    thread = std::thread([this] { server.serve(); });
  }

  ~ServerFixture() {
    server.requestStop();
    if (thread.joinable())
      thread.join();
  }

  static ServerOptions makeOptions(std::uint32_t maxFrameBytes) {
    ServerOptions options;
    options.socketPath =
        (fs::temp_directory_path() /
         ("mira_fuzz_" + std::to_string(::getpid()) + ".sock"))
            .string();
    options.threads = 2;
    options.maxFrameBytes = maxFrameBytes;
    return options;
  }
};

/// One raw exchange: write `frame` (as a length-prefixed frame), then
/// read replies until EOF. Returns the raw reply frames.
std::vector<std::string> rawExchange(const std::string &socketPath,
                                     const std::string &frame,
                                     bool truncateBody = false) {
  std::string error;
  net::Socket sock = net::connectUnix(socketPath, error);
  EXPECT_TRUE(sock.valid()) << error;
  if (!sock.valid())
    return {};
  if (truncateBody) {
    // Promise more bytes than we send, then close: the server must
    // treat the torn frame as a protocol error, not wait forever.
    std::string prefix;
    bio::putU32(prefix, static_cast<std::uint32_t>(frame.size() + 64));
    prefix += frame;
    ::send(sock.fd(), prefix.data(), prefix.size(), MSG_NOSIGNAL);
    sock.close();
    return {};
  }
  EXPECT_TRUE(net::writeFrame(sock.fd(), frame));
  // Half-close: the server sees EOF after our one frame, so a handler
  // that would otherwise wait for the next request closes instead —
  // reading "until EOF" below can never deadlock.
  ::shutdown(sock.fd(), SHUT_WR);
  std::vector<std::string> replies;
  for (;;) {
    std::string reply;
    const net::FrameStatus status =
        net::readFrame(sock.fd(), reply, kMaxFrameBytes);
    if (status != net::FrameStatus::ok)
      break;
    replies.push_back(std::move(reply));
  }
  return replies;
}

/// True when `frame` decodes as an Error reply.
bool isErrorReply(const std::string &frame) {
  bio::Reader r{frame, 0};
  MessageType type{};
  std::string error;
  if (!readHeader(r, type, error))
    return false;
  std::string message;
  return type == MessageType::error && decodeErrorReply(r, message);
}

TEST(ServerFuzz, MalformedTruncatedOversizedAnswerErrorThenCloseNoFdLeak) {
  ServerFixture fixture;
  // Let the session pool settle before measuring the fd baseline.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  const std::size_t baseline = openFdCount();

  std::mt19937_64 rng(kSeed ^ 0x4);
  int errorReplies = 0, closures = 0;
  for (int round = 0; round < 60; ++round) {
    switch (round % 4) {
    case 0: {
      // Garbage that can never parse as a header (bad magic byte):
      // MUST get Error then EOF.
      std::string garbage = randomBytes(rng, 64);
      garbage.insert(garbage.begin(), 'X');
      const auto replies = rawExchange(fixture.options.socketPath, garbage);
      ASSERT_EQ(replies.size(), 1u) << "expected exactly Error-then-close";
      EXPECT_TRUE(isErrorReply(replies[0]));
      ++errorReplies;
      break;
    }
    case 1: {
      // Valid header, mutated body. The server must answer exactly one
      // frame (a reply or an Error) or close; it must never wedge.
      std::string wire =
          encodeAnalyzeRequest({"fuzz", randomBytes(rng, 80)}, 0x3);
      wire = mutate(rng, wire);
      // Steer clear of frames that could parse as a shutdown request.
      if (wire.size() >= 9 && wire.compare(0, 4, "MirP") == 0 &&
          static_cast<std::uint8_t>(wire[8]) ==
              static_cast<std::uint8_t>(MessageType::shutdown))
        wire[8] = static_cast<char>(MessageType::ping);
      const auto replies = rawExchange(fixture.options.socketPath, wire);
      EXPECT_LE(replies.size(), 1u);
      closures += replies.empty() ? 1 : 0;
      break;
    }
    case 2: {
      // Oversized declared length: Error (v1 dialect) without reading
      // the body, then close.
      std::string error;
      net::Socket sock =
          net::connectUnix(fixture.options.socketPath, error);
      ASSERT_TRUE(sock.valid()) << error;
      std::string prefix;
      bio::putU32(prefix, fixture.options.maxFrameBytes + 1);
      ASSERT_EQ(::send(sock.fd(), prefix.data(), prefix.size(), MSG_NOSIGNAL),
                static_cast<ssize_t>(prefix.size()));
      std::string reply;
      ASSERT_EQ(net::readFrame(sock.fd(), reply, kMaxFrameBytes),
                net::FrameStatus::ok);
      EXPECT_TRUE(isErrorReply(reply));
      ASSERT_EQ(net::readFrame(sock.fd(), reply, kMaxFrameBytes),
                net::FrameStatus::closed);
      ++errorReplies;
      break;
    }
    default:
      // Torn frame: promised body never arrives.
      rawExchange(fixture.options.socketPath,
                  encodeEmptyMessage(MessageType::ping),
                  /*truncateBody=*/true);
      ++closures;
      break;
    }
  }
  EXPECT_GT(errorReplies, 0);
  EXPECT_GT(closures, 0);

  // A healthy request still works after the abuse.
  Client client;
  ASSERT_TRUE(client.connect(fixture.options.socketPath));
  EXPECT_TRUE(client.ping());
  client.disconnect();

  // Every connection above was closed by one side; the server must have
  // released its fd for each. Poll: handlers may still be draining.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  std::size_t now = openFdCount();
  while (now > baseline && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    now = openFdCount();
  }
  EXPECT_LE(now, baseline) << "file descriptors leaked under fuzzing";
}

TEST(ServerFuzz, MalformedManifestBlobsAnswerErrorThenClose) {
  ServerFixture fixture;
  corpus::Manifest manifest;
  manifest.entries = {{"a.mc", 1, 2}};
  const std::string good = corpus::serializeManifest(manifest);
  std::string bad = good;
  bad[bad.size() / 2] ^= 0x10; // checksum breaks

  const auto replies = rawExchange(fixture.options.socketPath,
                                   encodeManifestDiffRequest(good, bad));
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_TRUE(isErrorReply(replies[0]));

  // And the well-formed request still answers a real diff afterwards.
  Client client;
  ASSERT_TRUE(client.connect(fixture.options.socketPath));
  ManifestDiffReply reply;
  ASSERT_TRUE(client.manifestDiff(good, good, reply)) << client.lastError();
  EXPECT_TRUE(reply.added.empty());
  EXPECT_TRUE(reply.changed.empty());
  EXPECT_TRUE(reply.removed.empty());
  client.disconnect();
}

TEST(ServerFuzz, MalformedManifestBatchBlobsAnswerErrorThenClose) {
  ServerFixture fixture;
  corpus::Manifest manifest;
  manifest.root = "/nowhere";
  manifest.entries = {{"a.mc", 1, 2}};
  const std::string good = corpus::serializeManifest(manifest);

  std::mt19937_64 rng(kSeed ^ 0x7);
  for (int round = 0; round < 20; ++round) {
    // Mutated manifest blob inside a perfectly framed request: the
    // reader thread must validate and answer Error before anything
    // reaches the compute pool, then close.
    std::string bad = mutate(rng, good);
    if (bad == good)
      bad += "x";
    ManifestBatchRequest request;
    request.manifestBytes = bad;
    const auto replies = rawExchange(fixture.options.socketPath,
                                     encodeManifestBatchRequest(request));
    ASSERT_EQ(replies.size(), 1u) << "expected exactly Error-then-close";
    EXPECT_TRUE(isErrorReply(replies[0]));
  }
  {
    // A corrupt --since baseline is rejected the same way even when the
    // manifest itself is fine.
    ManifestBatchRequest request;
    request.manifestBytes = good;
    request.sinceBytes = "not a manifest";
    const auto replies = rawExchange(fixture.options.socketPath,
                                     encodeManifestBatchRequest(request));
    ASSERT_EQ(replies.size(), 1u);
    EXPECT_TRUE(isErrorReply(replies[0]));
  }
  {
    // Well-formed blobs whose sources do not exist on this machine:
    // the batch is admitted, fails at the read stage, and still answers
    // a clean Error instead of wedging the session.
    ManifestBatchRequest request;
    request.manifestBytes = good;
    const auto replies = rawExchange(fixture.options.socketPath,
                                     encodeManifestBatchRequest(request));
    ASSERT_EQ(replies.size(), 1u);
    EXPECT_TRUE(isErrorReply(replies[0]));
  }

  // The daemon survives all of it.
  Client client;
  ASSERT_TRUE(client.connect(fixture.options.socketPath));
  EXPECT_TRUE(client.ping()) << client.lastError();
  client.disconnect();
}

// ------------------------------------------- TCP + handshake layer

/// A live server on a loopback TCP ephemeral port (no Unix socket),
/// optionally requiring a shared-secret Hello handshake.
struct TcpServerFixture {
  ServerOptions options;
  AnalysisServer server;
  std::thread thread;

  explicit TcpServerFixture(const std::string &secret = std::string(),
                            std::uint32_t maxFrameBytes = 1 << 16)
      : options(makeOptions(secret, maxFrameBytes)), server(options) {
    std::string error;
    if (!server.start(error)) {
      ADD_FAILURE() << "server start failed: " << error;
      return;
    }
    thread = std::thread([this] { server.serve(); });
  }

  ~TcpServerFixture() {
    server.requestStop();
    if (thread.joinable())
      thread.join();
  }

  std::uint16_t port() const { return server.tcpPort(); }

  static ServerOptions makeOptions(const std::string &secret,
                                   std::uint32_t maxFrameBytes) {
    ServerOptions options;
    options.tcpListen = true;
    options.tcpHost = "127.0.0.1";
    options.tcpPortRequested = 0; // ephemeral; tests read server.tcpPort()
    options.threads = 2;
    options.maxFrameBytes = maxFrameBytes;
    options.secret = secret;
    return options;
  }
};

/// rawExchange over loopback TCP: write one frame, half-close, read
/// replies until EOF.
std::vector<std::string> rawExchangeTcp(std::uint16_t port,
                                        const std::string &frame,
                                        bool truncateBody = false) {
  std::string error;
  net::Socket sock = net::connectTcp("127.0.0.1", port, 2000, error);
  EXPECT_TRUE(sock.valid()) << error;
  if (!sock.valid())
    return {};
  if (truncateBody) {
    std::string prefix;
    bio::putU32(prefix, static_cast<std::uint32_t>(frame.size() + 64));
    prefix += frame;
    ::send(sock.fd(), prefix.data(), prefix.size(), MSG_NOSIGNAL);
    sock.close();
    return {};
  }
  EXPECT_TRUE(net::writeFrame(sock.fd(), frame));
  ::shutdown(sock.fd(), SHUT_WR);
  std::vector<std::string> replies;
  for (;;) {
    std::string reply;
    const net::FrameStatus status =
        net::readFrame(sock.fd(), reply, kMaxFrameBytes);
    if (status != net::FrameStatus::ok)
      break;
    replies.push_back(std::move(reply));
  }
  return replies;
}

TEST(ServerFuzz, TcpMalformedTruncatedOversizedAnswerErrorThenClose) {
  TcpServerFixture fixture;
  ASSERT_GT(fixture.port(), 0);

  std::mt19937_64 rng(kSeed ^ 0x8);
  int errorReplies = 0;
  for (int round = 0; round < 40; ++round) {
    switch (round % 4) {
    case 0: {
      std::string garbage = randomBytes(rng, 64);
      garbage.insert(garbage.begin(), 'X');
      const auto replies = rawExchangeTcp(fixture.port(), garbage);
      ASSERT_EQ(replies.size(), 1u) << "expected exactly Error-then-close";
      EXPECT_TRUE(isErrorReply(replies[0]));
      ++errorReplies;
      break;
    }
    case 1: {
      std::string wire =
          encodeAnalyzeRequest({"fuzz", randomBytes(rng, 80)}, 0x3);
      wire = mutate(rng, wire);
      if (wire.size() >= 9 && wire.compare(0, 4, "MirP") == 0 &&
          static_cast<std::uint8_t>(wire[8]) ==
              static_cast<std::uint8_t>(MessageType::shutdown))
        wire[8] = static_cast<char>(MessageType::ping);
      const auto replies = rawExchangeTcp(fixture.port(), wire);
      EXPECT_LE(replies.size(), 1u);
      break;
    }
    case 2: {
      // Oversized declared length over TCP: Error without reading the
      // body, then close — a port scan cannot make the daemon buffer.
      std::string error;
      net::Socket sock = net::connectTcp("127.0.0.1", fixture.port(), 2000,
                                         error);
      ASSERT_TRUE(sock.valid()) << error;
      std::string prefix;
      bio::putU32(prefix, fixture.options.maxFrameBytes + 1);
      ASSERT_EQ(::send(sock.fd(), prefix.data(), prefix.size(), MSG_NOSIGNAL),
                static_cast<ssize_t>(prefix.size()));
      std::string reply;
      ASSERT_EQ(net::readFrame(sock.fd(), reply, kMaxFrameBytes),
                net::FrameStatus::ok);
      EXPECT_TRUE(isErrorReply(reply));
      ASSERT_EQ(net::readFrame(sock.fd(), reply, kMaxFrameBytes),
                net::FrameStatus::closed);
      ++errorReplies;
      break;
    }
    default:
      rawExchangeTcp(fixture.port(), encodeEmptyMessage(MessageType::ping),
                     /*truncateBody=*/true);
      break;
    }
  }
  EXPECT_GT(errorReplies, 0);

  // A healthy TCP client still works after the abuse.
  Client client;
  ASSERT_TRUE(client.connectTcp("127.0.0.1", fixture.port()))
      << client.lastError();
  EXPECT_TRUE(client.ping());
  client.disconnect();
}

TEST(ServerFuzz, WrongSecretAnswersErrorThenCloseWithZeroCompute) {
  TcpServerFixture fixture("sesame");
  ASSERT_GT(fixture.port(), 0);

  // Requests without a Hello — including compute-bearing ones — are
  // refused before dispatch: exactly one Error frame, then close.
  const std::string analyze =
      encodeAnalyzeRequest({"probe", "int f() { return 1; }"}, 0x3);
  for (const std::string &frame :
       {analyze, encodeEmptyMessage(MessageType::ping),
        encodeEmptyMessage(MessageType::cacheStats)}) {
    const auto replies = rawExchangeTcp(fixture.port(), frame);
    ASSERT_EQ(replies.size(), 1u);
    EXPECT_TRUE(isErrorReply(replies[0]));
  }

  // Wrong secret: the client library surfaces it as a connect failure.
  {
    Client client;
    client.setSecret("wrong");
    EXPECT_FALSE(client.connectTcp("127.0.0.1", fixture.port()));
    EXPECT_EQ(client.lastErrorKind(), Client::ErrorKind::connect);
  }

  // Mutated Hello frames: the gate must answer at most one frame and
  // never wedge or grant a session.
  std::mt19937_64 rng(kSeed ^ 0x9);
  const std::string hello = encodeHelloRequest("sesame");
  for (int round = 0; round < 40; ++round) {
    std::string wire = mutate(rng, hello);
    if (wire == hello)
      continue; // the unmutated handshake is tested separately below
    const auto replies = rawExchangeTcp(fixture.port(), wire);
    EXPECT_LE(replies.size(), 1u);
  }

  // None of the above reached the pipeline: an unauthenticated peer
  // costs the daemon parsing, never compute.
  const ServerStats stats = fixture.server.snapshotStats();
  EXPECT_EQ(stats.sourcesAnalyzed, 0u);
  EXPECT_EQ(stats.computed, 0u);
  EXPECT_GT(stats.protocolErrors, 0u);

  // The correct secret still opens a fully working session.
  Client client;
  client.setSecret("sesame");
  ASSERT_TRUE(client.connectTcp("127.0.0.1", fixture.port()))
      << client.lastError();
  EXPECT_TRUE(client.ping()) << client.lastError();
  ClientOutcome outcome;
  core::MiraOptions options;
  EXPECT_TRUE(client.analyze("ok.mc", "int f(int n) { return n; }", options,
                             outcome))
      << client.lastError();
  client.disconnect();
}

TEST(ServerFuzz, HelloOnSecretlessDaemonIsAcceptedNotRequired) {
  TcpServerFixture fixture; // no secret configured
  ASSERT_GT(fixture.port(), 0);

  // A client configured with a secret still connects: the daemon
  // answers helloReply (ignoring the presented secret) so deployments
  // can roll secrets out client-first.
  Client withSecret;
  withSecret.setSecret("anything");
  ASSERT_TRUE(withSecret.connectTcp("127.0.0.1", fixture.port()))
      << withSecret.lastError();
  EXPECT_TRUE(withSecret.ping());
  withSecret.disconnect();

  // And a secretless client needs no handshake at all.
  Client plain;
  ASSERT_TRUE(plain.connectTcp("127.0.0.1", fixture.port()))
      << plain.lastError();
  EXPECT_TRUE(plain.ping());
  plain.disconnect();
}

// ------------------------------------------- partial-io layer

TEST(ProtocolFuzz, DribbledFramesReassembleByteAtATime) {
  // sendAll/recvAll must tolerate arbitrarily small reads/writes: a
  // frame dribbled one byte per send still reassembles exactly. This
  // pins the loop-until-complete behavior TCP depends on (a single
  // send() on a congested link can return short at any byte).
  int fds[2] = {-1, -1};
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const std::string frame = encodeAnalyzeRequest(
      {"dribble.mc", "int f(int n) { return n * 2; }"}, 0x3);
  std::string wire;
  bio::putU32(wire, static_cast<std::uint32_t>(frame.size()));
  wire += frame;

  std::thread writer([&] {
    for (char byte : wire) {
      ASSERT_EQ(::send(fds[0], &byte, 1, MSG_NOSIGNAL), 1);
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
    ::close(fds[0]);
  });
  std::string received;
  EXPECT_EQ(net::readFrame(fds[1], received, kMaxFrameBytes),
            net::FrameStatus::ok);
  EXPECT_EQ(received, frame);
  // After the dribbled frame the peer closed: a clean EOF, not an error.
  std::string rest;
  EXPECT_EQ(net::readFrame(fds[1], rest, kMaxFrameBytes),
            net::FrameStatus::closed);
  writer.join();
  ::close(fds[1]);
}

TEST(ProtocolFuzz, WriteFrameToClosedPeerFailsWithoutSignal) {
  // MSG_NOSIGNAL everywhere: writing into a closed peer must return
  // false (EPIPE), never raise SIGPIPE and kill the process.
  int fds[2] = {-1, -1};
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  ::close(fds[1]);
  const std::string frame = encodeEmptyMessage(MessageType::ping);
  bool ok = true;
  // The first write may land in the buffer before the RST is seen;
  // a bounded number of attempts must observe the failure.
  for (int i = 0; i < 32 && ok; ++i)
    ok = net::writeFrame(fds[0], frame);
  EXPECT_FALSE(ok);
  ::close(fds[0]);
}

} // namespace
} // namespace mira::server
