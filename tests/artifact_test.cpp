// Artifact-API (v2) tests: the AnalysisSpec/Artifacts surface, the
// ProgramHandle recompile-on-demand path, per-request fulfillment
// planning across memory/disk layers, and cache schema-v2/v1
// compatibility.
//
// Headline invariants pinned here:
//   * every ArtifactMask combination yields exactly the requested
//     artifacts, one-shot and batched, with byte-identical models and
//     identical coverage/simulation counters through every layer;
//   * warm-disk coverage is answered from the serialized summary with
//     zero recompiles and zero model generation;
//   * warm-disk simulation recompiles parse->codegen exactly once per
//     (source, options) and never regenerates the model;
//   * schema-v1 cache entries (including a checked-in v1 blob) still
//     load, degrading to recompile-on-demand where the summary is
//     missing.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include <unistd.h>

#include "core/artifacts.h"
#include "driver/batch.h"
#include "model/python_emitter.h"
#include "server/protocol.h"
#include "support/binary_io.h"
#include "support/cache_store.h"
#include "support/hash.h"
#include "workloads/workloads.h"

namespace mira {
namespace {

namespace fs = std::filesystem;

struct TempDir {
  fs::path path;
  explicit TempDir(const std::string &tag) {
    path = fs::temp_directory_path() /
           ("mira_artifact_test_" + tag + "_" + std::to_string(::getpid()));
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
  std::string str() const { return path.string(); }
};

core::AnalysisSpec fig5Spec(core::ArtifactMask mask) {
  core::AnalysisSpec spec;
  spec.name = "@fig5";
  spec.source = workloads::fig5Source();
  spec.artifacts = mask;
  if (mask & core::kArtifactSimulation) {
    spec.simulation.function = "fig5_main";
    spec.simulation.args = {sim::Value::ofInt(64)};
  }
  return spec;
}

/// Canonical bytes of a SimResult (the wire encoding), for equality
/// assertions across serving paths.
std::string simBytes(const sim::SimResult &result) {
  std::string out;
  server::putSimResult(out, result);
  return out;
}

/// Write a raw cache entry under `key` with an arbitrary schema
/// version — how the v1-compat tests plant pre-migration blobs.
void writeRawEntry(const fs::path &dir, std::uint64_t key,
                   std::uint32_t version, const std::string &payload) {
  std::string bytes;
  bio::putU32(bytes, 0x4172694d); // "MirA", the store's entry magic
  bio::putU32(bytes, version);
  bio::putU64(bytes, payload.size());
  bio::putU64(bytes, fnv1a(payload));
  bytes += payload;
  char name[32];
  std::snprintf(name, sizeof(name), "%016llx.mira",
                static_cast<unsigned long long>(key));
  std::ofstream out(dir / name, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// --------------------------------------------------------- one-shot API

TEST(ArtifactApi, MaskMatrixYieldsExactlyTheRequestedArtifacts) {
  for (core::ArtifactMask mask = 1; mask <= core::kArtifactAll; ++mask) {
    core::Artifacts artifacts = core::analyze(fig5Spec(mask));
    ASSERT_TRUE(artifacts.ok) << "mask " << unsigned(mask) << ": "
                              << artifacts.diagnostics;
    EXPECT_EQ(artifacts.requested, mask);
    EXPECT_EQ(artifacts.model != nullptr,
              (mask & core::kArtifactModel) != 0);
    EXPECT_EQ(artifacts.coverage.has_value(),
              (mask & core::kArtifactCoverage) != 0);
    EXPECT_EQ(artifacts.simulation != nullptr,
              (mask & core::kArtifactSimulation) != 0);
    // The live program handle is free to attach, so one-shot analysis
    // always carries one; it is never deferred on this path.
    ASSERT_NE(artifacts.program, nullptr);
    EXPECT_FALSE(artifacts.program->isDeferred());
    EXPECT_TRUE(artifacts.program->materialized());
    EXPECT_FALSE(artifacts.recompiled);
    if (artifacts.simulation)
      EXPECT_TRUE(artifacts.simulation->ok) << artifacts.simulation->error;
  }
}

TEST(ArtifactApi, ResultV1ViewSharesTheModelByteForByte) {
  // analyzeSource is gone (removed as of schema v2); resultV1 is the
  // surviving compatibility view and must carry the very same model.
  core::Artifacts artifacts = core::analyze(fig5Spec(core::kArtifactDefault));
  ASSERT_TRUE(artifacts.ok);
  ASSERT_NE(artifacts.resultV1, nullptr);
  EXPECT_EQ(model::emitPython(*artifacts.model),
            model::emitPython(artifacts.resultV1->model));

  // Two independent runs of the same spec render identically — the
  // determinism the deleted v1-shim comparison used to pin.
  core::Artifacts again = core::analyze(fig5Spec(core::kArtifactDefault));
  ASSERT_TRUE(again.ok);
  EXPECT_EQ(model::emitPython(*artifacts.model),
            model::emitPython(*again.model));
  EXPECT_EQ(artifacts.diagnostics, again.diagnostics);
}

TEST(ArtifactApi, SkippingTheModelStillCompilesAndCovers) {
  core::Artifacts artifacts =
      core::analyze(fig5Spec(core::kArtifactCoverage));
  ASSERT_TRUE(artifacts.ok);
  EXPECT_EQ(artifacts.model, nullptr);
  EXPECT_EQ(artifacts.resultV1, nullptr);
  ASSERT_TRUE(artifacts.coverage.has_value());
  EXPECT_GT(artifacts.coverage->loops, 0u);
  EXPECT_GT(artifacts.coverage->statements, 0u);
}

TEST(ArtifactApi, FailedSourceReportsDiagnosticsThroughEveryMask) {
  core::AnalysisSpec spec;
  spec.name = "bad.mc";
  spec.source = "int broken(";
  spec.artifacts = core::kArtifactAll;
  spec.simulation.function = "broken";
  core::Artifacts artifacts = core::analyze(spec);
  EXPECT_FALSE(artifacts.ok);
  EXPECT_FALSE(artifacts.diagnostics.empty());
  EXPECT_EQ(artifacts.model, nullptr);
  EXPECT_EQ(artifacts.program, nullptr);
  EXPECT_FALSE(artifacts.coverage.has_value());
  EXPECT_EQ(artifacts.simulation, nullptr);
}

// ------------------------------------------------------- ProgramHandle

TEST(ProgramHandleTest, DeferredHandleCompilesOnceAndMemoizes) {
  auto handle = core::ProgramHandle::deferred(
      workloads::fig5Source(), "@fig5", core::CompileOptions{});
  EXPECT_TRUE(handle->isDeferred());
  EXPECT_FALSE(handle->materialized());
  EXPECT_FALSE(handle->recompiled());

  bool compiledNow = false;
  auto program = handle->get(&compiledNow);
  ASSERT_NE(program, nullptr);
  EXPECT_TRUE(compiledNow);
  EXPECT_TRUE(handle->materialized());
  EXPECT_TRUE(handle->recompiled());

  auto again = handle->get(&compiledNow);
  EXPECT_EQ(again, program); // memoized, same object
  EXPECT_FALSE(compiledNow); // only the first call compiles
}

TEST(ProgramHandleTest, RecompiledProgramSimulatesLikeTheOriginal) {
  // The recompile skips model generation but must reproduce the same
  // binary semantics: simulation counters agree with a live compile.
  core::Artifacts live = core::analyze(fig5Spec(core::kArtifactSimulation));
  ASSERT_TRUE(live.ok);

  auto handle = core::ProgramHandle::deferred(
      workloads::fig5Source(), "@fig5", core::CompileOptions{});
  auto program = handle->get();
  ASSERT_NE(program, nullptr);
  sim::SimResult recompiled =
      core::simulate(*program, "fig5_main", {sim::Value::ofInt(64)});
  ASSERT_TRUE(recompiled.ok) << recompiled.error;
  EXPECT_EQ(simBytes(recompiled), simBytes(*live.simulation));
}

// ------------------------------------------------- batch fulfillment

TEST(ArtifactBatch, BatchedArtifactsMatchOneShotByteForByte) {
  core::Artifacts oneShot = core::analyze(fig5Spec(core::kArtifactAll));
  ASSERT_TRUE(oneShot.ok);

  driver::BatchOptions options;
  options.threads = 2;
  driver::BatchAnalyzer analyzer(options);
  auto results = analyzer.runArtifacts({fig5Spec(core::kArtifactAll)});
  ASSERT_EQ(results.size(), 1u);
  const core::Artifacts &batched = results[0];
  ASSERT_TRUE(batched.ok) << batched.diagnostics;

  EXPECT_EQ(model::emitPython(*batched.model),
            model::emitPython(*oneShot.model));
  EXPECT_EQ(batched.diagnostics, oneShot.diagnostics);
  ASSERT_TRUE(batched.coverage.has_value());
  EXPECT_EQ(batched.coverage->loops, oneShot.coverage->loops);
  EXPECT_EQ(batched.coverage->statements, oneShot.coverage->statements);
  EXPECT_EQ(batched.coverage->inLoopStatements,
            oneShot.coverage->inLoopStatements);
  EXPECT_EQ(simBytes(*batched.simulation), simBytes(*oneShot.simulation));

  const driver::BatchStats &stats = analyzer.stats();
  EXPECT_EQ(stats.modelArtifacts, 1u);
  EXPECT_EQ(stats.programArtifacts, 1u);
  EXPECT_EQ(stats.coverageArtifacts, 1u);
  EXPECT_EQ(stats.simulationArtifacts, 1u);
  EXPECT_EQ(stats.recompiles, 0u); // computed live, nothing deferred
}

TEST(ArtifactBatch, MaskDoesNotPerturbTheCacheKey) {
  for (core::ArtifactMask mask = 1; mask <= core::kArtifactAll; ++mask)
    EXPECT_EQ(driver::requestKey(fig5Spec(mask)),
              driver::requestKey(fig5Spec(core::kArtifactDefault)));
}

TEST(ArtifactBatch, DifferentMasksShareOneCacheEntry) {
  driver::BatchOptions options;
  options.threads = 2;
  driver::BatchAnalyzer analyzer(options);
  auto first = analyzer.runArtifacts({fig5Spec(core::kArtifactModel)});
  ASSERT_TRUE(first[0].ok);
  EXPECT_FALSE(first[0].cacheHit);

  // A coverage-only request for the same (source, options) must reuse
  // the entry the model request populated — full compute fills every
  // layer exactly so later masks are free.
  auto second = analyzer.runArtifacts({fig5Spec(core::kArtifactCoverage)});
  ASSERT_TRUE(second[0].ok);
  EXPECT_TRUE(second[0].cacheHit);
  ASSERT_TRUE(second[0].coverage.has_value());
  EXPECT_EQ(analyzer.cacheSize(), 1u);
  EXPECT_EQ(analyzer.stats().recompiles, 0u); // live program, no recompile
}

TEST(ArtifactBatch, ModelOnlyRequestsAttachCoverageOpportunistically) {
  // The serving layers forward whatever coverage the cache has into v2
  // wire payloads, so fulfillment attaches it when it costs nothing.
  driver::BatchAnalyzer analyzer(driver::BatchOptions{1, true});
  auto results = analyzer.runArtifacts({fig5Spec(core::kArtifactModel)});
  ASSERT_TRUE(results[0].ok);
  EXPECT_TRUE(results[0].coverage.has_value());
}

TEST(ArtifactBatch, NoCacheRequestsComputeOnlyWhatWasAsked) {
  // With caching off there is no layer to populate, so a coverage- or
  // simulation-only request must not pay for model generation (the
  // expensive stage). Observable contract: no model artifact exists
  // anywhere on the result, yet the requested artifacts are served.
  driver::BatchOptions options;
  options.threads = 1;
  options.useCache = false;
  driver::BatchAnalyzer analyzer(options);

  auto coverageRun =
      analyzer.runArtifacts({fig5Spec(core::kArtifactCoverage)});
  ASSERT_TRUE(coverageRun[0].ok);
  EXPECT_TRUE(coverageRun[0].coverage.has_value());
  EXPECT_EQ(coverageRun[0].model, nullptr);
  EXPECT_EQ(coverageRun[0].resultV1, nullptr);

  auto simRun = analyzer.runArtifacts({fig5Spec(core::kArtifactSimulation)});
  ASSERT_TRUE(simRun[0].ok);
  ASSERT_NE(simRun[0].simulation, nullptr);
  EXPECT_TRUE(simRun[0].simulation->ok) << simRun[0].simulation->error;
  EXPECT_EQ(simRun[0].model, nullptr);
}

// ------------------------------------------------- warm-disk planning

TEST(ArtifactBatch, WarmDiskCoverageComesFromSummariesWithZeroRecompiles) {
  TempDir dir("coverage");
  driver::BatchOptions options;
  options.threads = 2;
  options.cacheDir = dir.str();

  std::vector<core::AnalysisSpec> specs = {
      fig5Spec(core::kArtifactCoverage)};
  core::AnalysisSpec dgemm;
  dgemm.name = "@dgemm";
  dgemm.source = workloads::dgemmSource();
  dgemm.artifacts = core::kArtifactCoverage | core::kArtifactDiagnostics;
  specs.push_back(dgemm);

  sema::LoopCoverage coldFig5;
  {
    driver::BatchAnalyzer cold(options);
    auto results = cold.runArtifacts(specs);
    ASSERT_TRUE(results[0].ok && results[1].ok);
    coldFig5 = *results[0].coverage;
    EXPECT_EQ(cold.stats().diskStores, 2u);
  }
  {
    // A fresh analyzer (a fresh process, in effect) must answer both
    // summaries from disk without compiling anything.
    driver::BatchAnalyzer warm(options);
    auto results = warm.runArtifacts(specs);
    ASSERT_TRUE(results[0].ok && results[1].ok);
    EXPECT_TRUE(results[0].cacheHit);
    EXPECT_EQ(results[0].coverage->loops, coldFig5.loops);
    EXPECT_EQ(results[0].coverage->statements, coldFig5.statements);
    EXPECT_EQ(results[0].coverage->inLoopStatements,
              coldFig5.inLoopStatements);
    const driver::BatchStats &stats = warm.stats();
    EXPECT_EQ(stats.diskHits, 2u);
    EXPECT_EQ(stats.coverageFromCache, 2u);
    EXPECT_EQ(stats.recompiles, 0u);
    EXPECT_EQ(stats.cacheMisses, 0u);
  }
}

TEST(ArtifactBatch, WarmDiskSimulationRecompilesOnceNeverRemodels) {
  TempDir dir("simulate");
  driver::BatchOptions options;
  options.threads = 2;
  options.cacheDir = dir.str();

  std::string coldModel, coldSim;
  {
    driver::BatchAnalyzer cold(options);
    auto results = cold.runArtifacts(
        {fig5Spec(core::kArtifactModel | core::kArtifactSimulation)});
    ASSERT_TRUE(results[0].ok);
    coldModel = model::emitPython(*results[0].model);
    coldSim = simBytes(*results[0].simulation);
  }
  {
    driver::BatchAnalyzer warm(options);
    // Two identical simulation requests: the deferred handle must
    // compile once and be shared; the model must come from disk bytes.
    auto spec = fig5Spec(core::kArtifactModel | core::kArtifactSimulation);
    auto results = warm.runArtifacts({spec, spec});
    ASSERT_TRUE(results[0].ok && results[1].ok);
    EXPECT_TRUE(results[0].cacheHit);
    EXPECT_TRUE(results[1].cacheHit);
    EXPECT_EQ(model::emitPython(*results[0].model), coldModel);
    EXPECT_EQ(simBytes(*results[0].simulation), coldSim);
    EXPECT_EQ(simBytes(*results[1].simulation), coldSim);
    const driver::BatchStats &stats = warm.stats();
    EXPECT_EQ(stats.diskHits, 1u);
    EXPECT_EQ(stats.recompiles, 1u); // one parse->codegen re-run, shared
    EXPECT_EQ(stats.simulationArtifacts, 2u);
    // Exactly one of the two requests performed the recompile.
    EXPECT_NE(results[0].recompiled, results[1].recompiled);
  }
}

TEST(ArtifactBatch, WarmDiskProgramHandleStaysLazyUntilUsed) {
  TempDir dir("lazy");
  driver::BatchOptions options;
  options.threads = 1;
  options.cacheDir = dir.str();
  {
    driver::BatchAnalyzer cold(options);
    cold.runArtifacts({fig5Spec(core::kArtifactModel)});
  }
  driver::BatchAnalyzer warm(options);
  auto results = warm.runArtifacts({fig5Spec(core::kArtifactProgram)});
  ASSERT_TRUE(results[0].ok);
  ASSERT_NE(results[0].program, nullptr);
  EXPECT_TRUE(results[0].program->isDeferred());
  // Handing out the handle costs nothing; only get() compiles.
  EXPECT_FALSE(results[0].program->materialized());
  EXPECT_EQ(warm.stats().recompiles, 0u);
  ASSERT_NE(results[0].program->get(), nullptr);
  EXPECT_TRUE(results[0].program->recompiled());
}

// --------------------------------------------- schema v1 compatibility

TEST(ArtifactCompat, V1EntryServesTheModelAndDegradesCoverageToRecompile) {
  TempDir dir("v1entry");

  // Plant a genuine v1 blob: the v1 payload codec under a version-1
  // store header — exactly what a PR-2/PR-3 build would have written.
  core::Artifacts reference = core::analyze(fig5Spec(core::kArtifactAll));
  ASSERT_TRUE(reference.ok);
  const std::string v1Payload = driver::serializeOutcomePayloadV1(
      reference.resultV1.get(), reference.diagnostics, "@fig5");
  writeRawEntry(dir.path, driver::requestKey(fig5Spec(core::kArtifactModel)),
                1, v1Payload);

  driver::BatchOptions options;
  options.threads = 1;
  options.cacheDir = dir.str();
  driver::BatchAnalyzer analyzer(options);

  // Model: served straight from the v1 bytes.
  auto modelRun = analyzer.runArtifacts({fig5Spec(core::kArtifactModel)});
  ASSERT_TRUE(modelRun[0].ok);
  EXPECT_TRUE(modelRun[0].cacheHit);
  EXPECT_EQ(model::emitPython(*modelRun[0].model),
            model::emitPython(*reference.model));
  EXPECT_EQ(analyzer.stats().diskHits, 1u);
  EXPECT_EQ(analyzer.stats().recompiles, 0u);
  // No summary in a v1 payload: nothing to attach opportunistically.
  EXPECT_FALSE(modelRun[0].coverage.has_value());

  // Coverage: the v1 entry has no summary, so fulfillment recompiles
  // on demand — and the numbers match a live analysis exactly.
  auto coverageRun =
      analyzer.runArtifacts({fig5Spec(core::kArtifactCoverage)});
  ASSERT_TRUE(coverageRun[0].ok);
  EXPECT_TRUE(coverageRun[0].cacheHit);
  EXPECT_TRUE(coverageRun[0].recompiled);
  ASSERT_TRUE(coverageRun[0].coverage.has_value());
  EXPECT_EQ(coverageRun[0].coverage->loops, reference.coverage->loops);
  EXPECT_EQ(coverageRun[0].coverage->statements,
            reference.coverage->statements);
  EXPECT_EQ(analyzer.stats().recompiles, 1u);
  EXPECT_EQ(analyzer.stats().coverageFromCache, 0u);

  // Simulation reuses the already-materialized handle: no second
  // recompile for the same cache value.
  auto simRun = analyzer.runArtifacts({fig5Spec(core::kArtifactSimulation)});
  ASSERT_TRUE(simRun[0].ok);
  EXPECT_FALSE(simRun[0].recompiled);
  EXPECT_EQ(analyzer.stats().recompiles, 0u);
  EXPECT_EQ(simBytes(*simRun[0].simulation), simBytes(*reference.simulation));
}

TEST(ArtifactCompat, CheckedInV1FailureBlobStillLoads) {
  // A byte-for-byte v1 failure payload as a PR-2 build serialized it:
  //   [ok=0][producerName "legacy.mc"][diagnostics "legacy.mc:1:5: ..."]
  // Kept as a literal so codec drift against historical bytes (not just
  // against our own writer) fails this test.
  static const unsigned char kV1FailureBlob[] = {
      0x00,                                                  // ok = 0
      0x09, 0x00, 0x00, 0x00,                                // len 9
      'l', 'e', 'g', 'a', 'c', 'y', '.', 'm', 'c',           // producer
      0x1d, 0x00, 0x00, 0x00,                                // len 29
      'l', 'e', 'g', 'a', 'c', 'y', '.', 'm', 'c', ':', '1', ':', '5',
      ':', ' ', 'e', 'r', 'r', 'o', 'r', ':', ' ', 'b', 'r', 'o', 'k',
      'e', 'n', '\n',
  };
  const std::string payload(reinterpret_cast<const char *>(kV1FailureBlob),
                            sizeof(kV1FailureBlob));

  std::shared_ptr<const core::AnalysisResult> analysis;
  std::string diagnostics, producer;
  ASSERT_TRUE(driver::deserializeOutcomePayloadV1(payload, analysis,
                                                  diagnostics, producer));
  EXPECT_EQ(analysis, nullptr);
  EXPECT_EQ(producer, "legacy.mc");
  EXPECT_EQ(diagnostics, "legacy.mc:1:5: error: broken\n");

  // And through the whole stack: planted under the key of an
  // identically-failing source, the blob serves the cached failure.
  TempDir dir("v1blob");
  core::AnalysisSpec spec;
  spec.name = "legacy.mc";
  spec.source = "int broken(";
  spec.artifacts = core::kArtifactDefault;
  writeRawEntry(dir.path, driver::requestKey(spec), 1, payload);

  driver::BatchOptions options;
  options.threads = 1;
  options.cacheDir = dir.str();
  driver::BatchAnalyzer analyzer(options);
  auto results = analyzer.runArtifacts({spec});
  EXPECT_FALSE(results[0].ok);
  EXPECT_TRUE(results[0].cacheHit);
  EXPECT_NE(results[0].diagnostics.find("error: broken"), std::string::npos);
  EXPECT_EQ(analyzer.stats().diskHits, 1u);
}

TEST(ArtifactCompat, V2RerunUpgradesNothingButServesSummaries) {
  // After a v1 entry is recomputed under schema v2 (cache cleared of
  // the old blob), the new entry carries the summary and coverage stops
  // recompiling — the migration the CLI's `cache clear --schema v1`
  // enables.
  TempDir dir("upgrade");
  CacheStore store(dir.str());
  core::Artifacts reference = core::analyze(fig5Spec(core::kArtifactAll));
  const std::string v1Payload = driver::serializeOutcomePayloadV1(
      reference.resultV1.get(), reference.diagnostics, "@fig5");
  const std::uint64_t key =
      driver::requestKey(fig5Spec(core::kArtifactModel));
  writeRawEntry(dir.path, key, 1, v1Payload);

  ASSERT_EQ(store.clearVersion(1), 1u);
  EXPECT_EQ(store.entryCount(), 0u);

  driver::BatchOptions options;
  options.threads = 1;
  options.cacheDir = dir.str();
  {
    driver::BatchAnalyzer recompute(options);
    auto results =
        recompute.runArtifacts({fig5Spec(core::kArtifactCoverage)});
    ASSERT_TRUE(results[0].ok);
    EXPECT_FALSE(results[0].cacheHit); // the v1 blob is gone: full compute
  }
  driver::BatchAnalyzer warm(options);
  auto results = warm.runArtifacts({fig5Spec(core::kArtifactCoverage)});
  ASSERT_TRUE(results[0].ok);
  EXPECT_TRUE(results[0].cacheHit);
  EXPECT_EQ(warm.stats().coverageFromCache, 1u);
  EXPECT_EQ(warm.stats().recompiles, 0u);
}

// --------------------------------------------------- payload codec v2

TEST(ArtifactPayload, RoundTripsModelCoverageAndFailures) {
  core::Artifacts reference = core::analyze(
      fig5Spec(core::kArtifactModel | core::kArtifactCoverage));
  ASSERT_TRUE(reference.ok);

  const std::string payload = driver::serializeArtifactPayload(
      reference.model.get(), &*reference.coverage, reference.diagnostics,
      "@fig5");
  std::shared_ptr<const core::AnalysisResult> analysis;
  std::optional<sema::LoopCoverage> coverage;
  std::string diagnostics, producer;
  ASSERT_TRUE(driver::deserializeArtifactPayload(payload, analysis, coverage,
                                                 diagnostics, producer));
  ASSERT_NE(analysis, nullptr);
  EXPECT_EQ(model::emitPython(analysis->model),
            model::emitPython(*reference.model));
  ASSERT_TRUE(coverage.has_value());
  EXPECT_EQ(coverage->loops, reference.coverage->loops);
  EXPECT_EQ(producer, "@fig5");

  // Without a summary (a value that round-tripped through v1 bytes).
  const std::string noCoverage = driver::serializeArtifactPayload(
      reference.model.get(), nullptr, reference.diagnostics, "@fig5");
  ASSERT_TRUE(driver::deserializeArtifactPayload(noCoverage, analysis,
                                                 coverage, diagnostics,
                                                 producer));
  EXPECT_FALSE(coverage.has_value());

  // Failure payloads carry no coverage and no model.
  const std::string failure = driver::serializeArtifactPayload(
      nullptr, nullptr, "bad.mc:1:1: error: nope\n", "bad.mc");
  ASSERT_TRUE(driver::deserializeArtifactPayload(failure, analysis, coverage,
                                                 diagnostics, producer));
  EXPECT_EQ(analysis, nullptr);
  EXPECT_FALSE(coverage.has_value());

  // Trailing garbage is corruption, not data.
  std::string tampered = payload + "x";
  EXPECT_FALSE(driver::deserializeArtifactPayload(tampered, analysis,
                                                  coverage, diagnostics,
                                                  producer));
}

TEST(ArtifactPayload, SimResultEncodingRoundTripsEveryField) {
  core::Artifacts artifacts =
      core::analyze(fig5Spec(core::kArtifactSimulation));
  ASSERT_TRUE(artifacts.ok);
  const sim::SimResult &reference = *artifacts.simulation;
  ASSERT_TRUE(reference.ok);

  std::string bytes = simBytes(reference);
  bio::Reader r{bytes, 0};
  sim::SimResult decoded;
  ASSERT_TRUE(server::readSimResult(r, decoded));
  EXPECT_EQ(r.remaining(), 0u);
  EXPECT_EQ(simBytes(decoded), bytes); // canonical: re-encode identically
  EXPECT_EQ(decoded.total.totalInstructions,
            reference.total.totalInstructions);
  EXPECT_EQ(decoded.total.fpInstructions, reference.total.fpInstructions);
  EXPECT_EQ(decoded.functions.size(), reference.functions.size());
}

} // namespace
} // namespace mira
