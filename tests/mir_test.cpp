// MIR-level tests: lowering structure, optimization passes, the
// vectorizer's transformations, register allocation and code generation
// invariants.
#include <gtest/gtest.h>

#include "codegen/codegen.h"
#include "codegen/regalloc.h"
#include "frontend/parser.h"
#include "mir/lowering.h"
#include "mir/passes.h"
#include "sema/sema.h"

namespace mira::mir {
namespace {

struct Lowered {
  std::unique_ptr<frontend::TranslationUnit> unit;
  MirModule module;
  DiagnosticEngine diags;
};

Lowered lower(const std::string &src, bool optimize = true,
              bool vectorize = true) {
  Lowered out;
  out.unit = frontend::Parser::parse(src, "t.mc", out.diags);
  EXPECT_FALSE(out.diags.hasErrors()) << out.diags.str();
  sema::SemanticAnalyzer analyzer(out.diags);
  auto sr = analyzer.analyze(*out.unit);
  EXPECT_TRUE(sr.success) << out.diags.str();
  CompilerOptions options;
  options.optimize = optimize;
  options.vectorize = vectorize;
  out.module = lowerToMir(*out.unit, options, out.diags);
  EXPECT_FALSE(out.diags.hasErrors()) << out.diags.str();
  return out;
}

std::size_t countOps(const MirFunction &fn, MirOp op) {
  std::size_t n = 0;
  for (const MirBlock &b : fn.blocks)
    for (const MirInst &inst : b.insts)
      if (inst.op == op)
        ++n;
  return n;
}

TEST(Lowering, CountedLoopHasCanonicalShape) {
  auto l = lower("void f(double* v, int n) {\n"
                 "  for (int i = 0; i < n; i++) {\n"
                 "    v[i] = 1.0;\n"
                 "  }\n"
                 "}",
                 /*optimize=*/false, /*vectorize=*/false);
  const MirFunction *fn = l.module.find("f");
  ASSERT_NE(fn, nullptr);
  ASSERT_EQ(fn->loops.size(), 1u);
  const LoopDescriptor &loop = fn->loops[0];
  EXPECT_EQ(loop.step, 1);
  EXPECT_EQ(loop.rel, MirCmp::Lt);
  // Header: ICmp + Branch only.
  const MirBlock &header = fn->blocks[loop.header];
  ASSERT_EQ(header.insts.size(), 2u);
  EXPECT_EQ(header.insts[0].op, MirOp::ICmp);
  EXPECT_EQ(header.insts[1].op, MirOp::Branch);
  // Latch increments the induction register and jumps back.
  const MirBlock &latch = fn->blocks[loop.latch];
  EXPECT_EQ(latch.insts.back().op, MirOp::Jump);
  EXPECT_EQ(latch.insts.back().target, loop.header);
}

TEST(Lowering, LeAndReversedConditionsNormalizeToLt) {
  auto l = lower("void f(int n) { for (int i = 1; i <= n; i++) { } }",
                 false, false);
  const MirFunction *fn = l.module.find("f");
  ASSERT_EQ(fn->loops.size(), 1u);
  EXPECT_EQ(fn->loops[0].rel, MirCmp::Lt); // limit was bumped by one
}

TEST(Lowering, MethodGetsImplicitThis) {
  auto l = lower("class A { public: int n;\n"
                 "  int get() { return n; } };");
  const MirFunction *fn = l.module.find("A::get");
  ASSERT_NE(fn, nullptr);
  ASSERT_EQ(fn->paramRegs.size(), 1u); // this
  EXPECT_EQ(fn->paramTypes[0], MirType::Ptr);
  // Field access is a load through 'this'.
  EXPECT_GE(countOps(*fn, MirOp::Load), 1u);
}

TEST(Lowering, MultiDimArrayLinearizes) {
  auto l = lower("double f(int n, int m) {\n"
                 "  double a[n][m];\n"
                 "  a[1][2] = 5.0;\n"
                 "  return a[1][2];\n"
                 "}",
                 false, false);
  const MirFunction *fn = l.module.find("f");
  // linearization multiplies by the row size: at least one Mul.
  EXPECT_GE(countOps(*fn, MirOp::Mul), 2u);
  EXPECT_EQ(countOps(*fn, MirOp::Alloca), 1u);
}

TEST(Passes, ConstantFoldingFoldsLiteralArithmetic) {
  auto l = lower("int f() { return 2 * 3 + 4; }", false, false);
  MirFunction *fn = l.module.find("f");
  std::size_t rewritten = foldConstants(*fn);
  EXPECT_GE(rewritten, 1u);
  eliminateDeadCode(*fn);
  // After folding+DCE there is no Mul left.
  EXPECT_EQ(countOps(*fn, MirOp::Mul), 0u);
}

TEST(Passes, DeadCodeEliminationRemovesUnusedValues) {
  auto l = lower("int f(int a) {\n"
                 "  int unused = a * 17;\n"
                 "  return a;\n"
                 "}",
                 false, false);
  MirFunction *fn = l.module.find("f");
  std::size_t before = countOps(*fn, MirOp::Mul);
  EXPECT_EQ(before, 1u);
  propagateCopies(*fn);
  std::size_t removed = eliminateDeadCode(*fn);
  EXPECT_GE(removed, 1u);
  EXPECT_EQ(countOps(*fn, MirOp::Mul), 0u);
}

TEST(Passes, DceKeepsSideEffects) {
  auto l = lower("void f(double* p) { p[0] = 1.0; mc_print(p[0]); }",
                 false, false);
  MirFunction *fn = l.module.find("f");
  eliminateDeadCode(*fn);
  EXPECT_EQ(countOps(*fn, MirOp::Store), 1u);
  EXPECT_EQ(countOps(*fn, MirOp::Call), 1u);
}

TEST(Passes, UnreachableBlocksCleared) {
  auto l = lower("int f() { return 1; }", false, false);
  MirFunction *fn = l.module.find("f");
  // Lowering creates an unreachable continuation after 'return'.
  std::size_t removed = removeUnreachableBlocks(*fn);
  (void)removed;
  for (const MirBlock &b : fn->blocks) {
    bool reachableFromEntry = b.id == 0;
    for (const MirBlock &p : fn->blocks)
      for (std::uint32_t s : p.successors())
        if (s == b.id)
          reachableFromEntry = true;
    if (!reachableFromEntry && b.id != 0)
      EXPECT_TRUE(b.insts.empty()) << "block " << b.id;
  }
}

TEST(Vectorizer, EligibleLoopBecomesPackedPlusRemainder) {
  auto l = lower("void f(double* a, double* b, int n) {\n"
                 "  for (int i = 0; i < n; i++) {\n"
                 "    a[i] = a[i] + b[i];\n"
                 "  }\n"
                 "}");
  const MirFunction *fn = l.module.find("f");
  ASSERT_EQ(fn->loops.size(), 2u);
  const LoopDescriptor &main = fn->loops[0];
  const LoopDescriptor &rem = fn->loops[1];
  EXPECT_TRUE(main.vectorized);
  EXPECT_EQ(main.step, 2);
  EXPECT_EQ(main.remainderLoop, 1);
  EXPECT_FALSE(rem.vectorized);
  EXPECT_EQ(rem.step, 1);
  // Packed instructions exist in the main body only.
  bool sawPacked = false;
  for (std::uint32_t b : main.bodyBlocks)
    for (const MirInst &inst : fn->blocks[b].insts)
      if (inst.packed)
        sawPacked = true;
  EXPECT_TRUE(sawPacked);
  for (std::uint32_t b : rem.bodyBlocks)
    for (const MirInst &inst : fn->blocks[b].insts)
      EXPECT_FALSE(inst.packed);
}

TEST(Vectorizer, ReductionGetsHorizontalAddEpilogue) {
  auto l = lower("double f(double* a, int n) {\n"
                 "  double s = 0.0;\n"
                 "  for (int i = 0; i < n; i++) {\n"
                 "    s = s + a[i];\n"
                 "  }\n"
                 "  return s;\n"
                 "}");
  const MirFunction *fn = l.module.find("f");
  EXPECT_EQ(countOps(*fn, MirOp::FHAdd), 1u);
}

TEST(Vectorizer, GatherAccessRejected) {
  auto l = lower("double f(double* a, int* idx, int n) {\n"
                 "  double s = 0.0;\n"
                 "  for (int i = 0; i < n; i++) {\n"
                 "    s = s + a[idx[i]];\n"
                 "  }\n"
                 "  return s;\n"
                 "}");
  const MirFunction *fn = l.module.find("f");
  for (const LoopDescriptor &loop : fn->loops)
    EXPECT_FALSE(loop.vectorized);
}

TEST(Vectorizer, CallInBodyRejected) {
  auto l = lower("double g(double x) { return x; }\n"
                 "void f(double* a, int n) {\n"
                 "  for (int i = 0; i < n; i++) {\n"
                 "    a[i] = g(a[i]);\n"
                 "  }\n"
                 "}");
  const MirFunction *fn = l.module.find("f");
  for (const LoopDescriptor &loop : fn->loops)
    EXPECT_FALSE(loop.vectorized);
}

TEST(Vectorizer, BranchInBodyRejected) {
  auto l = lower("void f(double* a, int n) {\n"
                 "  for (int i = 0; i < n; i++) {\n"
                 "    if (i % 2 == 0) { a[i] = 0.0; }\n"
                 "  }\n"
                 "}");
  const MirFunction *fn = l.module.find("f");
  for (const LoopDescriptor &loop : fn->loops)
    EXPECT_FALSE(loop.vectorized);
}

// ----------------------------------------------------------------- codegen

TEST(RegAlloc, AssignsDistinctRegistersToOverlappingIntervals) {
  auto l = lower("int f(int a, int b, int c) { return a + b * c; }", false,
                 false);
  const MirFunction *fn = l.module.find("f");
  auto alloc = codegen::allocateRegisters(*fn);
  // Parameters are live simultaneously: if all in registers, they must
  // be distinct.
  std::set<isa::Reg> used;
  for (VReg p : fn->paramRegs) {
    const auto &a = alloc.of(p);
    if (a.inRegister)
      EXPECT_TRUE(used.insert(a.reg).second) << "register reused";
  }
}

TEST(RegAlloc, ValuesLiveAcrossCallsAreStackHomed) {
  auto l = lower("double g(double x) { return x; }\n"
                 "double f(double a) {\n"
                 "  double keep = a * 2.0;\n"
                 "  double r = g(a);\n"
                 "  return keep + r;\n"
                 "}",
                 false, false);
  const MirFunction *fn = l.module.find("f");
  auto alloc = codegen::allocateRegisters(*fn);
  // Find the vreg of 'keep': the Copy receiving the FMul's result.
  VReg keep = kNoVReg;
  VReg mulTemp = kNoVReg;
  for (const MirBlock &b : fn->blocks)
    for (const MirInst &inst : b.insts) {
      if (inst.op == MirOp::FMul)
        mulTemp = inst.dst;
      if (inst.op == MirOp::Copy && inst.a == mulTemp &&
          mulTemp != kNoVReg)
        keep = inst.dst;
    }
  ASSERT_NE(keep, kNoVReg);
  // 'keep' lives across the call: must be spilled (caller-clobbers-all).
  EXPECT_FALSE(alloc.of(keep).inRegister);
}

TEST(Codegen, ExpansionCoversEveryInstruction) {
  auto l = lower("double f(double* v, int n) {\n"
                 "  double s = 0.0;\n"
                 "  for (int i = 0; i < n; i++) {\n"
                 "    s = s + v[i];\n"
                 "  }\n"
                 "  return s;\n"
                 "}");
  const MirFunction *fn = l.module.find("f");
  std::map<std::string, int> ids{{"f", 0}};
  auto result = codegen::generateCode(*fn, ids);
  // Every machine instruction is either prologue or owned by exactly one
  // MIR instruction.
  std::vector<int> owners(result.machine.instructions.size(), 0);
  for (std::uint32_t mi : result.map.prologue)
    ++owners[mi];
  for (const auto &block : result.map.expansion)
    for (const auto &instList : block)
      for (std::uint32_t mi : instList)
        ++owners[mi];
  for (std::size_t i = 0; i < owners.size(); ++i)
    EXPECT_EQ(owners[i], 1) << "machine instr " << i << " "
                            << result.machine.instructions[i].str();
}

TEST(Codegen, BranchesResolveToValidOffsets) {
  auto l = lower("int f(int n) {\n"
                 "  int s = 0;\n"
                 "  for (int i = 0; i < n; i++) {\n"
                 "    if (i % 2 == 0) { s = s + 1; } else { s = s + 2; }\n"
                 "  }\n"
                 "  return s;\n"
                 "}");
  const MirFunction *fn = l.module.find("f");
  std::map<std::string, int> ids{{"f", 0}};
  auto result = codegen::generateCode(*fn, ids);
  std::set<std::uint64_t> starts;
  for (const auto &inst : result.machine.instructions)
    starts.insert(inst.address);
  std::uint64_t end = result.machine.instructions.empty()
                          ? 0
                          : result.machine.instructions.back().address +
                                result.machine.instructions.back()
                                    .encodedSize();
  for (const auto &inst : result.machine.instructions) {
    if (isa::isConditionalJump(inst.opcode) ||
        isa::isUnconditionalJump(inst.opcode)) {
      ASSERT_FALSE(inst.operands.empty());
      ASSERT_EQ(inst.operands[0].kind, isa::OperandKind::Imm);
      std::uint64_t target =
          static_cast<std::uint64_t>(inst.operands[0].imm);
      EXPECT_TRUE(starts.count(target) || target == end)
          << inst.str() << " jumps outside the function";
    }
  }
}

TEST(Codegen, CallsCarryFunctionIds) {
  auto l = lower("int g(int x) { return x; }\n"
                 "int f() { return g(1); }");
  const MirFunction *fn = l.module.find("f");
  std::map<std::string, int> ids{{"g", 0}, {"f", 1}};
  auto result = codegen::generateCode(*fn, ids);
  bool sawCall = false;
  for (const auto &inst : result.machine.instructions) {
    if (isa::isCall(inst.opcode)) {
      sawCall = true;
      ASSERT_EQ(inst.operands[0].kind, isa::OperandKind::Label);
      EXPECT_EQ(inst.operands[0].imm, 0); // id of g
    }
  }
  EXPECT_TRUE(sawCall);
}

TEST(Codegen, ExternCallsGetNegativeIds) {
  EXPECT_LT(codegen::externCallId("mc_print"), 0);
  EXPECT_NE(codegen::externCallId("mc_print"),
            codegen::externCallId("mc_clock"));
}

} // namespace
} // namespace mira::mir
