// Workload-level validation (the paper's Sec. IV methodology at test
// sizes): STREAM, DGEMM and miniFE-CG compile, run, and the static model
// tracks the simulator's FPI within the paper's error envelope. Also
// validates fast-forward == exact on every workload, which licenses the
// benches to use fast-forward at paper-scale sizes.
#include <gtest/gtest.h>

#include "core/artifacts.h"
#include "core/mira.h"
#include "frontend/parser.h"
#include "sema/ast_stats.h"
#include "workloads/coverage_suite.h"
#include "workloads/workloads.h"

namespace mira {
namespace {

using core::AnalysisResult;
using core::relativeError;
using sim::SimOptions;
using sim::Value;

AnalysisResult analyze(const std::string &src, const char *name) {
  DiagnosticEngine diags;
  core::AnalysisSpec spec;
  spec.name = name;
  spec.source = src;
  spec.artifacts = core::kArtifactModel | core::kArtifactDiagnostics |
                   core::kArtifactProgram;
  core::Artifacts artifacts = core::analyze(spec, diags);
  EXPECT_TRUE(artifacts.ok && artifacts.resultV1) << diags.str();
  return *artifacts.resultV1;
}

sim::SimResult run(const AnalysisResult &a, const std::string &fn,
                   const std::vector<Value> &args, bool ff) {
  SimOptions options;
  options.fastForward = ff;
  return core::simulate(*a.program, fn, args, options);
}

void expectCountersEqual(const sim::SimResult &a, const sim::SimResult &b) {
  EXPECT_EQ(a.total.totalInstructions, b.total.totalInstructions);
  EXPECT_EQ(a.total.fpInstructions, b.total.fpInstructions);
  EXPECT_EQ(a.total.flops, b.total.flops);
  for (std::size_t c = 0; c < isa::kNumCategories; ++c)
    EXPECT_EQ(a.total.categories[c], b.total.categories[c]) << "cat " << c;
}

// ------------------------------------------------------------------ STREAM

TEST(Stream, CompilesAndKernelsVectorize) {
  auto a = analyze(workloads::streamSource(), "stream.mc");
  // All four kernels plus init and checksum must be vectorized: each has
  // a main (step 2) and remainder (step 1) machine loop.
  for (const char *fn : {"copy_kernel", "scale_kernel", "add_kernel",
                         "triad_kernel", "checksum", "stream_init"}) {
    const auto *bin = a.program->binaryAst.find(fn);
    ASSERT_NE(bin, nullptr) << fn;
    EXPECT_GE(bin->loops.size(), 2u) << fn << " not vectorized";
  }
}

TEST(Stream, FastForwardMatchesExact) {
  auto a = analyze(workloads::streamSource(), "stream.mc");
  for (int n : {1, 2, 17, 100}) {
    auto exact = run(a, "stream_main", {Value::ofInt(n), Value::ofInt(3)},
                     false);
    auto ff = run(a, "stream_main", {Value::ofInt(n), Value::ofInt(3)}, true);
    ASSERT_TRUE(exact.ok) << exact.error;
    ASSERT_TRUE(ff.ok) << ff.error;
    expectCountersEqual(exact, ff);
  }
}

TEST(Stream, StaticFPITracksDynamicWithinPaperEnvelope) {
  auto a = analyze(workloads::streamSource(), "stream.mc");
  for (int n : {100, 1000, 4096}) {
    auto staticFPI =
        a.staticFPI("stream_main", {{"n", n}, {"ntimes", 10}});
    ASSERT_TRUE(staticFPI.has_value());
    auto r = run(a, "stream_main", {Value::ofInt(n), Value::ofInt(10)}, true);
    ASSERT_TRUE(r.ok) << r.error;
    double dynamicFPI = r.fpiOf("stream_main");
    // Paper Table III errors: <= 0.47%.
    EXPECT_LT(relativeError(*staticFPI, dynamicFPI), 0.005)
        << "n=" << n << " static=" << *staticFPI << " dyn=" << dynamicFPI;
    // FPI must scale with the STREAM work: 4 FP ops per element per rep.
    EXPECT_GT(dynamicFPI, 4.0 * n * 10 / 2 * 0.9);
  }
}

TEST(Stream, ChecksumValueIsCorrectInExactMode) {
  auto a = analyze(workloads::streamSource(), "stream.mc");
  auto r = run(a, "stream_main", {Value::ofInt(64), Value::ofInt(2)}, false);
  ASSERT_TRUE(r.ok);
  ASSERT_EQ(r.printed.size(), 1u);
  // After k reps: a = b + 3c where the recurrence converges to the STREAM
  // triad fixed pattern; just check it is finite and positive.
  EXPECT_GT(r.printed[0], 0.0);
}

// ------------------------------------------------------------------ DGEMM

TEST(Dgemm, InnerLoopStaysScalarOuterStructureHolds) {
  auto a = analyze(workloads::dgemmSource(), "dgemm.mc");
  const auto *bin = a.program->binaryAst.find("dgemm_kernel");
  ASSERT_NE(bin, nullptr);
  // Strided b[k*n+j] access blocks vectorization: every machine loop in
  // the kernel is scalar (step 1).
  for (const auto &loop : bin->loops)
    EXPECT_LE(loop.step, 1) << "dgemm kernel loop unexpectedly vectorized";
}

TEST(Dgemm, FastForwardMatchesExact) {
  auto a = analyze(workloads::dgemmSource(), "dgemm.mc");
  for (int n : {1, 2, 5, 16}) {
    auto exact = run(a, "dgemm_main", {Value::ofInt(n)}, false);
    auto ff = run(a, "dgemm_main", {Value::ofInt(n)}, true);
    ASSERT_TRUE(exact.ok && ff.ok) << exact.error << ff.error;
    expectCountersEqual(exact, ff);
  }
}

TEST(Dgemm, StaticFPITracksDynamic) {
  auto a = analyze(workloads::dgemmSource(), "dgemm.mc");
  for (int n : {8, 32, 64}) {
    // 'total' is a local (n*n) the static analysis cannot resolve; it is
    // a user-supplied model parameter, like the paper's y_16.
    auto staticFPI = a.staticFPI(
        "dgemm_main", {{"n", n}, {"total", static_cast<std::int64_t>(n) * n}});
    ASSERT_TRUE(staticFPI.has_value());
    auto r = run(a, "dgemm_main", {Value::ofInt(n)}, true);
    ASSERT_TRUE(r.ok) << r.error;
    double dynamicFPI = r.fpiOf("dgemm_main");
    // Paper Table IV errors: <= 0.05%.
    EXPECT_LT(relativeError(*staticFPI, dynamicFPI), 0.01)
        << "n=" << n << " static=" << *staticFPI << " dyn=" << dynamicFPI;
    // FPI is dominated by 2n^3 multiply-adds.
    EXPECT_GT(dynamicFPI, 2.0 * n * n * n * 0.95);
  }
}

// ----------------------------------------------------------------- miniFE

TEST(MiniFE, CompilesWithMethodCallChain) {
  auto a = analyze(workloads::minifeSource(), "minife.mc");
  EXPECT_NE(a.model.find("MatVec::operator()"), nullptr);
  EXPECT_NE(a.model.find("cg_solve"), nullptr);
  EXPECT_NE(a.model.find("waxpby"), nullptr);
  EXPECT_NE(a.model.find("dot"), nullptr);
  // Model names follow the paper's naming scheme.
  EXPECT_EQ(a.model.find("MatVec::operator()")->modelName,
            "MatVec_operator_call_2");
  EXPECT_EQ(a.model.find("waxpby")->modelName, "waxpby_6");
}

TEST(MiniFE, SolverConvergesOnSmallGrid) {
  auto a = analyze(workloads::minifeSource(), "minife.mc");
  auto r = run(a, "cg_solve",
               {Value::ofInt(6), Value::ofInt(6), Value::ofInt(6),
                Value::ofInt(60)},
               false);
  ASSERT_TRUE(r.ok) << r.error;
  // CG on the SPD 7-point Laplacian reduces the residual norm below the
  // initial one (exactness not required at fixed iterations).
  EXPECT_LT(r.returnValue.f, 6.0 * 6.0 * 6.0);
  EXPECT_GE(r.returnValue.f, 0.0);
}

TEST(MiniFE, FastForwardMatchesExact) {
  auto a = analyze(workloads::minifeSource(), "minife.mc");
  for (int s : {2, 4, 6}) {
    auto exact = run(a, "minife_main",
                     {Value::ofInt(s), Value::ofInt(s), Value::ofInt(s),
                      Value::ofInt(5)},
                     false);
    auto ff = run(a, "minife_main",
                  {Value::ofInt(s), Value::ofInt(s), Value::ofInt(s),
                   Value::ofInt(5)},
                  true);
    ASSERT_TRUE(exact.ok && ff.ok) << exact.error << ff.error;
    expectCountersEqual(exact, ff);
  }
}

model::Env minifeEnv(int nx, int ny, int nz, int iters) {
  // The user-supplied model parameters (paper Sec. III-C: sample values
  // provided at evaluation time): nrows is the grid size, nnz_row the
  // stencil size annotation.
  return {{"nx", nx},       {"ny", ny},   {"nz", nz},
          {"max_iters", iters}, {"nrows", nx * ny * nz}, {"nnz_row", 7}};
}

TEST(MiniFE, StaticFPIWithinPaperEnvelope) {
  auto a = analyze(workloads::minifeSource(), "minife.mc");
  for (int s : {8, 12}) {
    int iters = 20;
    auto staticFPI = a.staticFPI("cg_solve", minifeEnv(s, s, s, iters));
    ASSERT_TRUE(staticFPI.has_value());
    auto r = run(a, "cg_solve",
                 {Value::ofInt(s), Value::ofInt(s), Value::ofInt(s),
                  Value::ofInt(iters)},
                 true);
    ASSERT_TRUE(r.ok) << r.error;
    double dynamicFPI = r.fpiOf("cg_solve");
    // Paper Table V errors reach 3.08%; the nnz_row=7 annotation
    // overestimates boundary rows, so allow a slightly wider envelope at
    // these very small grids (boundary fraction is larger than the
    // paper's 30^3+).
    EXPECT_LT(relativeError(*staticFPI, dynamicFPI), 0.08)
        << "s=" << s << " static=" << *staticFPI << " dyn=" << dynamicFPI;
  }
}

TEST(MiniFE, PerFunctionCountsMatchTableVShape) {
  auto a = analyze(workloads::minifeSource(), "minife.mc");
  int s = 10, iters = 10;
  auto r = run(a, "cg_solve",
               {Value::ofInt(s), Value::ofInt(s), Value::ofInt(s),
                Value::ofInt(iters)},
               true);
  ASSERT_TRUE(r.ok) << r.error;
  // Call counts: 3 waxpby + 2 dot per iteration (+1 initial dot), one
  // matvec per iteration.
  EXPECT_EQ(r.functions.at("waxpby").calls,
            static_cast<std::uint64_t>(3 * iters));
  EXPECT_EQ(r.functions.at("dot").calls,
            static_cast<std::uint64_t>(2 * iters + 1));
  EXPECT_EQ(r.functions.at("MatVec::operator()").calls,
            static_cast<std::uint64_t>(iters));
  // cg_solve dominates (paper: "accounts for the bulk of the FP
  // computations").
  EXPECT_GT(r.fpiOf("cg_solve"), r.fpiOf("waxpby"));
  EXPECT_GT(r.fpiOf("cg_solve"), r.fpiOf("MatVec::operator()"));
  // Static per-function models evaluate too.
  auto env = minifeEnv(s, s, s, iters);
  env["n"] = s * s * s; // waxpby's own parameter when evaluated standalone
  auto waxpbyStatic = a.model.evaluate("waxpby", env);
  ASSERT_TRUE(waxpbyStatic.has_value());
  double waxpbyDynPerCall = r.fpiPerCall("waxpby");
  EXPECT_LT(relativeError(waxpbyStatic->fpInstructions, waxpbyDynPerCall),
            0.01);
}

// ----------------------------------------------------------- Fig.5 model

TEST(Fig5, ModelEvaluatesWithUserParameter) {
  auto a = analyze(workloads::fig5Source(), "fig5.mc");
  // y is the user-supplied bound (the paper's y_16): 16 outer iterations
  // of an inner loop with y iterations; body has 1 mul + 1 add.
  auto counts = a.model.evaluate("A::foo", {{"y", 8}});
  ASSERT_TRUE(counts.has_value());
  auto r = core::simulate(*a.program, "fig5_main", {Value::ofInt(64)});
  ASSERT_TRUE(r.ok) << r.error;
  double dynamicFPI = r.fpiOf("A::foo");
  EXPECT_LT(relativeError(counts->fpInstructions, dynamicFPI), 0.02)
      << "static=" << counts->fpInstructions << " dyn=" << dynamicFPI;
}

// -------------------------------------------------------------- Listings

TEST(Listings, AllListingFunctionsReturnPaperCounts) {
  auto a = analyze(workloads::listingsSource(), "listings.mc");
  auto r1 = core::simulate(*a.program, "listing1", {});
  EXPECT_EQ(r1.returnValue.i, 10);
  auto r2 = core::simulate(*a.program, "listing2", {});
  EXPECT_EQ(r2.returnValue.i, 14); // paper Fig. 4(a)
  auto r4 = core::simulate(*a.program, "listing4", {});
  EXPECT_EQ(r4.returnValue.i, 8); // paper Fig. 4(b)
  auto r5 = core::simulate(*a.program, "listing5", {});
  EXPECT_EQ(r5.returnValue.i, 11); // paper Fig. 4(c): 14 - 3
}

TEST(Listings, StaticCountsMatchDynamicForListings) {
  auto a = analyze(workloads::listingsSource(), "listings.mc");
  for (const char *fn : {"listing1", "listing2", "listing4", "listing5"}) {
    auto staticFPI = a.staticFPI(fn, {});
    ASSERT_TRUE(staticFPI.has_value()) << fn;
    auto r = core::simulate(*a.program, fn, {});
    ASSERT_TRUE(r.ok);
    // These integer listings have no FP; compare the integer-arithmetic
    // category exactly (the branch-glue JMPs of if-diamonds are counted
    // conservatively by the static side, so raw totals may differ by a
    // few control-transfer instructions — see DESIGN.md limitations).
    auto counts = a.model.evaluate(fn, {});
    ASSERT_TRUE(counts.has_value());
    auto categories = counts->categories(arch::haswellDescription());
    double staticArith = categories[static_cast<std::size_t>(
        isa::InstrCategory::IntArith)];
    double dynArith =
        static_cast<double>(r.functions.at(fn).inclusive.categories
                                [static_cast<std::size_t>(
                                    isa::InstrCategory::IntArith)]);
    EXPECT_NEAR(staticArith, dynArith, 0.01) << fn;
    EXPECT_NEAR(counts->totalInstructions,
                static_cast<double>(
                    r.functions.at(fn).inclusive.totalInstructions),
                0.06 * counts->totalInstructions)
        << fn;
  }
}

TEST(Listings, Listing3NeedsAndUsesAnnotation) {
  auto a = analyze(workloads::listingsSource(), "listings.mc");
  const auto *fn = a.model.find("listing3");
  ASSERT_NE(fn, nullptr);
  // min/max bounds are not statically countable; the annotation completes
  // the model (notes record the substitution).
  bool noted = false;
  for (const auto &note : fn->notes)
    if (note.find("lp_init") != std::string::npos ||
        note.find("annotated") != std::string::npos)
      noted = true;
  EXPECT_TRUE(noted);
  auto params = a.model.requiredParameters("listing3");
  EXPECT_TRUE(params.count("jlo"));
  EXPECT_TRUE(params.count("jhi"));
  // Supplying the annotation parameters makes the model evaluable.
  auto counts = a.model.evaluate("listing3", {{"jlo", 1}, {"jhi", 6}});
  EXPECT_TRUE(counts.has_value());
}

// -------------------------------------------------------- coverage suite

TEST(CoverageSuite, AllKernelsCompile) {
  for (const auto &kernel : workloads::coverageSuite()) {
    DiagnosticEngine diags;
    core::AnalysisSpec spec;
    spec.name = kernel.name + ".mc";
    spec.source = kernel.source;
    spec.artifacts = core::kArtifactModel | core::kArtifactDiagnostics;
    core::Artifacts artifacts = core::analyze(spec, diags);
    EXPECT_TRUE(artifacts.ok) << kernel.name << ": " << diags.str();
  }
}

TEST(CoverageSuite, LoopCoverageIsHPCLike) {
  // Table I's point: HPC codes keep the large majority of statements in
  // loops. Our stand-ins must reproduce that profile.
  for (const auto &kernel : workloads::coverageSuite()) {
    DiagnosticEngine diags;
    auto unit =
        frontend::Parser::parse(kernel.source, kernel.name, diags);
    ASSERT_FALSE(diags.hasErrors()) << kernel.name;
    auto cov = sema::computeLoopCoverage(*unit);
    EXPECT_GE(cov.percent(), 60.0) << kernel.name;
    EXPECT_GT(cov.loops, 0u) << kernel.name;
  }
}

} // namespace
} // namespace mira
