// Fleet chaos/failover tests: fork real `mira-cli serve --listen` worker
// daemons on loopback TCP ephemeral ports plus a real `mira-cli
// coordinate` run, and pin the headline fleet invariants (docs/FLEET.md):
//
//   - the merged fleet report is byte-identical to a 1-process local
//     `batch --manifest` run against a cold cache;
//   - a worker SIGKILLed mid-shard (MIRA_FAULT compute:crash) gets its
//     lease re-issued under a bumped epoch, the run still exits 0 with
//     byte-identical output, and no worker cache holds a corrupt entry;
//   - a stalled worker's lease expires past --lease-timeout and its
//     late reply is fenced (stale epoch), observable through
//     --metrics-file (mira_fleet_leases_expired/fenced_total);
//   - the coordinator follows the client CLI exit contract: 2 usage,
//     3 connect/handshake failure, 1 daemon-side failures, 0 success.
//
// Workers listen on port 0 and the tests parse the bound port from the
// readiness line ("... tcp 127.0.0.1:PORT ..."), so runs never race on
// a fixed port. MIRA_CLI_PATH is injected by CMake.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <csignal>
#include <sys/wait.h>
#include <unistd.h>

#include "driver/batch.h"
#include "support/cache_store.h"

namespace mira {
namespace {

namespace fs = std::filesystem;

struct TempDir {
  fs::path path;
  explicit TempDir(const std::string &tag) {
    path = fs::temp_directory_path() /
           ("mira_fleet_test_" + tag + "_" + std::to_string(::getpid()));
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
};

void writeFile(const fs::path &path, const std::string &bytes) {
  fs::create_directories(path.parent_path());
  std::ofstream out(path, std::ios::binary);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

std::string readFile(const fs::path &path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

/// Distinct single-loop kernels (same shape the shard tests use).
void writeCorpus(const fs::path &root, int count) {
  for (int i = 0; i < count; ++i) {
    char name[32];
    std::snprintf(name, sizeof(name), "kernel_%02d.mc", i);
    char source[256];
    std::snprintf(source, sizeof(source),
                  "int kernel_%02d(int n) {\n"
                  "  int s = %d;\n"
                  "  for (int i = 0; i < n; i++) {\n"
                  "    s = s + i * %d;\n"
                  "  }\n"
                  "  return s;\n"
                  "}\n",
                  i, i, i + 1);
    writeFile(root / name, source);
  }
}

/// Run one CLI invocation synchronously; returns its exit code.
int runCli(const std::vector<std::string> &args, const fs::path &logPath) {
  std::string command = MIRA_CLI_PATH;
  for (const std::string &arg : args)
    command += " '" + arg + "'";
  command += " > '" + logPath.string() + "' 2>&1";
  const int status = std::system(command.c_str());
  if (status == -1)
    return -1;
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

/// Fork+exec one CLI invocation with optional extra environment
/// ("NAME=VALUE" strings — how the tests arm MIRA_FAULT in a worker
/// without touching their own process). Returns the child pid.
pid_t spawnCli(const std::vector<std::string> &args, const fs::path &logPath,
               const std::vector<std::string> &extraEnv = {}) {
  const pid_t pid = ::fork();
  if (pid != 0)
    return pid;
  std::FILE *log = std::freopen(logPath.string().c_str(), "w", stdout);
  (void)log;
  ::dup2(::fileno(stdout), ::fileno(stderr));
  for (const std::string &assignment : extraEnv) {
    const std::size_t eq = assignment.find('=');
    ::setenv(assignment.substr(0, eq).c_str(),
             assignment.substr(eq + 1).c_str(), 1);
  }
  std::vector<char *> argv;
  std::string cli = MIRA_CLI_PATH;
  argv.push_back(cli.data());
  std::vector<std::string> copies = args;
  for (std::string &arg : copies)
    argv.push_back(arg.data());
  argv.push_back(nullptr);
  ::execv(cli.c_str(), argv.data());
  std::_Exit(127); // exec failed
}

int waitFor(pid_t pid) {
  int status = 0;
  if (::waitpid(pid, &status, 0) != pid)
    return -1;
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

/// One forked worker daemon; SIGKILLed and reaped on destruction so a
/// failing assertion never leaks a listener into the next test.
struct Worker {
  pid_t pid = -1;
  ~Worker() { shutdown(); }
  void shutdown() {
    if (pid <= 0)
      return;
    ::kill(pid, SIGKILL);
    int status = 0;
    ::waitpid(pid, &status, 0);
    pid = -1;
  }
};

/// Poll a worker's log for the readiness line and parse the ephemeral
/// TCP port out of "... tcp 127.0.0.1:PORT ...". 0 = never appeared.
int waitForPort(const fs::path &logPath, int timeoutMillis = 10000) {
  const std::string needle = "tcp 127.0.0.1:";
  for (int waited = 0; waited < timeoutMillis; waited += 50) {
    const std::string log = readFile(logPath);
    const std::size_t at = log.find(needle);
    if (at != std::string::npos) {
      int port = 0;
      for (std::size_t i = at + needle.size();
           i < log.size() && log[i] >= '0' && log[i] <= '9'; ++i)
        port = port * 10 + (log[i] - '0');
      if (port > 0)
        return port;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  return 0;
}

/// Start a worker daemon on 127.0.0.1:0 with its own cache directory
/// and return its bound port (asserts readiness).
int startWorker(Worker &worker, const TempDir &dir, const std::string &tag,
                const std::vector<std::string> &extraEnv = {},
                const std::vector<std::string> &extraArgs = {}) {
  const fs::path log = dir.path / (tag + ".log");
  std::vector<std::string> args = {"serve", "--listen", "127.0.0.1:0",
                                   "--threads", "2", "--cache-dir",
                                   (dir.path / (tag + "_cache")).string()};
  args.insert(args.end(), extraArgs.begin(), extraArgs.end());
  worker.pid = spawnCli(args, log, extraEnv);
  const int port = waitForPort(log);
  EXPECT_GT(port, 0) << tag << " never became ready: " << readFile(log);
  return port;
}

/// Scrape one `mira_<name> <value>` sample out of a --metrics-file dump.
/// -1 when the sample is absent.
long long scrapeMetric(const fs::path &metricsFile, const std::string &name) {
  std::ifstream in(metricsFile);
  std::string line;
  const std::string prefix = "mira_" + name + " ";
  while (std::getline(in, line))
    if (line.rfind(prefix, 0) == 0)
      return std::strtoll(line.c_str() + prefix.size(), nullptr, 10);
  return -1;
}

/// Build a corpus + manifest and produce the canonical local cold-run
/// report the fleet output must match byte for byte.
void prepareCorpus(const TempDir &dir, int sources, fs::path &manifest,
                   fs::path &localReport) {
  const fs::path corpus = dir.path / "corpus";
  writeCorpus(corpus, sources);
  manifest = dir.path / "corpus.manifest";
  ASSERT_EQ(runCli({"manifest", "build", corpus.string(), "--out",
                    manifest.string()},
                   dir.path / "build.log"),
            0)
      << readFile(dir.path / "build.log");
  localReport = dir.path / "local.report";
  ASSERT_EQ(runCli({"batch", "--manifest", manifest.string(), "--cache-dir",
                    (dir.path / "local_cache").string(), "--report",
                    localReport.string()},
                   dir.path / "local.log"),
            0)
      << readFile(dir.path / "local.log");
}

std::string workerList(const std::vector<int> &ports) {
  std::string list;
  for (int port : ports) {
    if (!list.empty())
      list += ",";
    list += "127.0.0.1:" + std::to_string(port);
  }
  return list;
}

// ------------------------------------------------------------- tests

TEST(Fleet, HappyPathThreeWorkerFleetMatchesLocalRun) {
  TempDir dir("happy");
  fs::path manifest, localReport;
  prepareCorpus(dir, 12, manifest, localReport);
  if (::testing::Test::HasFatalFailure())
    return;

  Worker a, b, c;
  const int pa = startWorker(a, dir, "worker_a");
  const int pb = startWorker(b, dir, "worker_b");
  const int pc = startWorker(c, dir, "worker_c");
  ASSERT_TRUE(pa && pb && pc);

  const fs::path report = dir.path / "fleet.report";
  const fs::path metrics = dir.path / "fleet.metrics";
  ASSERT_EQ(runCli({"coordinate", "--manifest", manifest.string(),
                    "--workers", workerList({pa, pb, pc}), "--shard-count",
                    "3", "--report", report.string(), "--metrics-file",
                    metrics.string(), "--progress"},
                   dir.path / "coordinate.log"),
            0)
      << readFile(dir.path / "coordinate.log");

  EXPECT_EQ(readFile(report), readFile(localReport))
      << "fleet report differs from the local cold run";
  EXPECT_EQ(scrapeMetric(metrics, "fleet_shards_completed_total"), 3);
  EXPECT_EQ(scrapeMetric(metrics, "fleet_leases_issued_total"), 3);
  EXPECT_EQ(scrapeMetric(metrics, "fleet_leases_reissued_total"), 0);
  EXPECT_EQ(scrapeMetric(metrics, "fleet_leases_fenced_total"), 0);
}

TEST(Fleet, WorkerCrashMidShardLeaseReissuedByteIdentical) {
  TempDir dir("crash");
  fs::path manifest, localReport;
  prepareCorpus(dir, 10, manifest, localReport);
  if (::testing::Test::HasFatalFailure())
    return;

  // Worker B dies with SIGKILL (no unwinding, no flush — see
  // fault_injection.h) on its second full compute, i.e. mid-shard.
  Worker a, b;
  const int pa = startWorker(a, dir, "worker_a");
  const int pb =
      startWorker(b, dir, "worker_b", {"MIRA_FAULT=compute:crash:2"});
  ASSERT_TRUE(pa && pb);

  const fs::path report = dir.path / "fleet.report";
  const fs::path metrics = dir.path / "fleet.metrics";
  ASSERT_EQ(runCli({"coordinate", "--manifest", manifest.string(),
                    "--workers", workerList({pa, pb}), "--shard-count", "2",
                    "--lease-timeout", "2", "--report", report.string(),
                    "--metrics-file", metrics.string(), "--progress"},
                   dir.path / "coordinate.log"),
            0)
      << readFile(dir.path / "coordinate.log");

  // The dead worker's shard was re-leased (bumped epoch) and the merged
  // report still matches the local cold run byte for byte.
  EXPECT_EQ(readFile(report), readFile(localReport))
      << readFile(dir.path / "coordinate.log");
  EXPECT_GE(scrapeMetric(metrics, "fleet_leases_reissued_total"), 1);
  EXPECT_EQ(scrapeMetric(metrics, "fleet_shards_completed_total"), 2);

  // SIGKILL mid-batch must never leave a corrupt cache entry behind:
  // every surviving entry in every worker cache loads and validates.
  for (const std::string &tag : {"worker_a_cache", "worker_b_cache"}) {
    const fs::path cacheDir = dir.path / tag;
    if (!fs::exists(cacheDir))
      continue;
    CacheStore store(cacheDir.string());
    for (std::uint64_t key : store.keys())
      EXPECT_TRUE(store.load(key).has_value()) << tag;
    EXPECT_EQ(store.stats().corrupt, 0u) << tag;
  }
}

TEST(Fleet, StalledWorkerLeaseExpiresAndLateReplyIsFenced) {
  TempDir dir("stall");
  fs::path manifest, localReport;
  prepareCorpus(dir, 8, manifest, localReport);
  if (::testing::Test::HasFatalFailure())
    return;

  // Worker B freezes for 6 s on its first compute — far past the 0.5 s
  // lease timeout, so its lease expires and the shard re-runs on A; far
  // under the coordinator's read timeout (10x the lease), so B's late
  // reply does arrive and must be discarded by the epoch fence.
  Worker a, b;
  const int pa = startWorker(a, dir, "worker_a");
  const int pb =
      startWorker(b, dir, "worker_b", {"MIRA_FAULT=compute:stall:1:6000"});
  ASSERT_TRUE(pa && pb);

  const fs::path report = dir.path / "fleet.report";
  const fs::path metrics = dir.path / "fleet.metrics";
  ASSERT_EQ(runCli({"coordinate", "--manifest", manifest.string(),
                    "--workers", workerList({pa, pb}), "--shard-count", "2",
                    "--lease-timeout", "0.5", "--report", report.string(),
                    "--metrics-file", metrics.string(), "--progress"},
                   dir.path / "coordinate.log"),
            0)
      << readFile(dir.path / "coordinate.log");

  EXPECT_EQ(readFile(report), readFile(localReport))
      << readFile(dir.path / "coordinate.log");
  EXPECT_GE(scrapeMetric(metrics, "fleet_leases_expired_total"), 1)
      << readFile(dir.path / "coordinate.log");
  EXPECT_GE(scrapeMetric(metrics, "fleet_leases_fenced_total"), 1)
      << readFile(dir.path / "coordinate.log");
  EXPECT_EQ(scrapeMetric(metrics, "fleet_shards_completed_total"), 2);
}

TEST(Fleet, CoordinatorFollowsClientExitContract) {
  TempDir dir("exits");
  fs::path manifest, localReport;
  prepareCorpus(dir, 4, manifest, localReport);
  if (::testing::Test::HasFatalFailure())
    return;

  // Usage errors: 2 — missing manifest, missing workers, junk endpoint.
  EXPECT_EQ(runCli({"coordinate", "--workers", "127.0.0.1:1"},
                   dir.path / "u1.log"),
            2);
  EXPECT_EQ(runCli({"coordinate", "--manifest", manifest.string()},
                   dir.path / "u2.log"),
            2);
  EXPECT_EQ(runCli({"coordinate", "--manifest", manifest.string(),
                    "--workers", "localhost"},
                   dir.path / "u3.log"),
            2);

  // No worker reachable: 3 (port 1 on loopback refuses immediately).
  EXPECT_EQ(runCli({"coordinate", "--manifest", manifest.string(),
                    "--workers", "127.0.0.1:1", "--connect-timeout", "1"},
                   dir.path / "refused.log"),
            3)
      << readFile(dir.path / "refused.log");

  // Handshake rejected everywhere is a connect failure too: 3.
  Worker secured;
  const int ps = startWorker(secured, dir, "worker_secured", {},
                             {"--secret", "sesame"});
  ASSERT_GT(ps, 0);
  EXPECT_EQ(runCli({"coordinate", "--manifest", manifest.string(),
                    "--workers", workerList({ps}), "--secret", "wrong"},
                   dir.path / "badsecret.log"),
            3)
      << readFile(dir.path / "badsecret.log");
  // The right secret on the same worker completes and exits 0.
  EXPECT_EQ(runCli({"coordinate", "--manifest", manifest.string(),
                    "--workers", workerList({ps}), "--secret", "sesame",
                    "--report", (dir.path / "secured.report").string()},
                   dir.path / "goodsecret.log"),
            0)
      << readFile(dir.path / "goodsecret.log");
  EXPECT_EQ(readFile(dir.path / "secured.report"), readFile(localReport));
  secured.shutdown();

  // Analysis failures in the corpus surface as exit 1 (same contract as
  // `batch`): the run completes, the report records the failures.
  const fs::path badCorpus = dir.path / "bad_corpus";
  writeCorpus(badCorpus, 2);
  writeFile(badCorpus / "broken.mc", "int broken(int n) { return (; }\n");
  const fs::path badManifest = dir.path / "bad.manifest";
  ASSERT_EQ(runCli({"manifest", "build", badCorpus.string(), "--out",
                    badManifest.string()},
                   dir.path / "badbuild.log"),
            0);
  Worker plain;
  const int pp = startWorker(plain, dir, "worker_plain");
  ASSERT_GT(pp, 0);
  EXPECT_EQ(runCli({"coordinate", "--manifest", badManifest.string(),
                    "--workers", workerList({pp})},
                   dir.path / "failing.log"),
            1)
      << readFile(dir.path / "failing.log");
}

} // namespace
} // namespace mira
