// Persistent-cache subsystem tests: the CacheStore on-disk format and
// its corruption tolerance (truncation, wrong schema version, torn
// payloads, concurrent writers all degrade to recompute, never to a
// failed batch), the PerformanceModel binary serializer round trip, and
// the BatchAnalyzer disk level — a second run over an unchanged corpus
// performs zero recomputation and is byte-identical to a cold run.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#ifndef _WIN32
#include <unistd.h>
#endif

#include "driver/batch.h"
#include "model/python_emitter.h"
#include "model/serialize.h"
#include "support/cache_store.h"
#include "workloads/coverage_suite.h"
#include "workloads/workloads.h"

namespace mira {
namespace {

namespace fs = std::filesystem;

/// Fresh directory under the system temp root, removed on scope exit.
struct TempDir {
  fs::path path;

  explicit TempDir(const std::string &tag) {
#ifndef _WIN32
    const unsigned long pid = static_cast<unsigned long>(::getpid());
#else
    const unsigned long pid = 0;
#endif
    path = fs::temp_directory_path() /
           ("mira_cache_test_" + tag + "_" + std::to_string(pid));
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string str() const { return path.string(); }
};

/// The single cache entry file in `dir` (fails the test when there isn't
/// exactly one).
fs::path onlyEntry(const fs::path &dir) {
  std::vector<fs::path> entries;
  for (const auto &it : fs::directory_iterator(dir))
    if (it.path().extension() == ".mira")
      entries.push_back(it.path());
  EXPECT_EQ(entries.size(), 1u);
  return entries.empty() ? fs::path() : entries.front();
}

// ------------------------------------------------------------ CacheStore

TEST(CacheStoreTest, RoundTripAndMiss) {
  TempDir dir("roundtrip");
  CacheStore store(dir.str());
  ASSERT_TRUE(store.usable());
  EXPECT_FALSE(store.load(1).has_value());
  EXPECT_EQ(store.stats().misses, 1u);

  ASSERT_TRUE(store.store(1, "hello cache"));
  auto loaded = store.load(1);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, "hello cache");
  EXPECT_EQ(store.stats().hits, 1u);
  EXPECT_EQ(store.entryCount(), 1u);
  EXPECT_GT(store.totalBytes(), 11u); // payload + header

  ASSERT_TRUE(store.store(1, "replaced"));
  EXPECT_EQ(store.entryCount(), 1u);
  EXPECT_EQ(*store.load(1), "replaced");

  store.clear();
  EXPECT_EQ(store.entryCount(), 0u);
  EXPECT_FALSE(store.load(1).has_value());
}

TEST(CacheStoreTest, EmptyPayloadRoundTrips) {
  TempDir dir("empty");
  CacheStore store(dir.str());
  ASSERT_TRUE(store.store(7, ""));
  auto loaded = store.load(7);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_TRUE(loaded->empty());
}

TEST(CacheStoreTest, SurvivesAcrossInstances) {
  TempDir dir("instances");
  {
    CacheStore store(dir.str());
    ASSERT_TRUE(store.store(99, "persistent"));
  }
  CacheStore reopened(dir.str());
  auto loaded = reopened.load(99);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, "persistent");
}

TEST(CacheStoreTest, TruncatedEntryIsAMissAndRemoved) {
  TempDir dir("truncated");
  CacheStore store(dir.str());
  ASSERT_TRUE(store.store(5, "a payload that will be cut short"));
  fs::path file = onlyEntry(dir.path);

  fs::resize_file(file, fs::file_size(file) / 2);
  EXPECT_FALSE(store.load(5).has_value());
  EXPECT_EQ(store.stats().corrupt, 1u);
  EXPECT_FALSE(fs::exists(file)) << "corrupt entry should be unlinked";

  // Truncated below the header too.
  ASSERT_TRUE(store.store(5, "again"));
  fs::resize_file(onlyEntry(dir.path), 3);
  EXPECT_FALSE(store.load(5).has_value());
}

TEST(CacheStoreTest, WrongSchemaVersionIsAMissButNotDestroyed) {
  TempDir dir("version");
  CacheStore store(dir.str());
  ASSERT_TRUE(store.store(6, "versioned payload"));
  fs::path file = onlyEntry(dir.path);

  // The version field is bytes [4, 8) of the header.
  std::fstream f(file, std::ios::in | std::ios::out | std::ios::binary);
  f.seekp(4);
  const char bumped = static_cast<char>(kCacheSchemaVersion + 1);
  f.write(&bumped, 1);
  f.close();

  // A different schema version is another binary's valid entry, not
  // corruption: miss, but leave the file alone so two versions sharing
  // a directory cannot destroy each other's caches.
  EXPECT_FALSE(store.load(6).has_value());
  EXPECT_EQ(store.stats().corrupt, 0u);
  EXPECT_TRUE(fs::exists(file));

  // Our own store replaces it, after which loads hit again.
  ASSERT_TRUE(store.store(6, "current version"));
  auto reloaded = store.load(6);
  ASSERT_TRUE(reloaded.has_value());
  EXPECT_EQ(*reloaded, "current version");
}

TEST(CacheStoreTest, VersionedLoadAcceptsSupportedOldSchemas) {
  TempDir dir("oldschema");
  CacheStore store(dir.str());
  ASSERT_TRUE(store.store(6, "schema payload"));
  fs::path file = onlyEntry(dir.path);

  // Rewrite the header's version field (bytes [4, 8)) to v1.
  {
    std::fstream f(file, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(4);
    const char v1 = 1;
    f.write(&v1, 1);
  }

  // The current-schema load() misses; the versioned overload serves the
  // entry and reports which schema wrote it.
  EXPECT_FALSE(store.load(6).has_value());
  std::uint32_t version = 0;
  auto loaded = store.load(6, version);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(version, 1u);
  EXPECT_EQ(*loaded, "schema payload");
  EXPECT_EQ(store.entryVersion(6), 1u);
  EXPECT_TRUE(fs::exists(file)); // readable compat entries are kept

  // Below the supported floor (version 0): a miss, but not corruption.
  {
    std::fstream f(file, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(4);
    const char v0 = 0;
    f.write(&v0, 1);
  }
  EXPECT_FALSE(store.load(6, version).has_value());
  EXPECT_TRUE(fs::exists(file));
}

TEST(CacheStoreTest, PeekDoesNotBumpRecencyOrCounters) {
  TempDir dir("peek");
  CacheStore store(dir.str());
  ASSERT_TRUE(store.store(9, "peeked payload"));
  fs::path file = onlyEntry(dir.path);
  const auto mtimeBefore = fs::last_write_time(file);
  const CacheStoreStats before = store.stats();

  std::uint32_t version = 0;
  auto peeked = store.peek(9, version);
  ASSERT_TRUE(peeked.has_value());
  EXPECT_EQ(*peeked, "peeked payload");
  EXPECT_EQ(version, kCacheSchemaVersion);
  EXPECT_EQ(store.stats().hits, before.hits);
  EXPECT_EQ(store.stats().misses, before.misses);
  EXPECT_EQ(fs::last_write_time(file), mtimeBefore)
      << "peek must not perturb LRU recency";

  // Even a corrupt entry is left for the next real load to reap: an
  // inspection pass must not delete files or move counters.
  fs::resize_file(file, fs::file_size(file) / 2);
  EXPECT_FALSE(store.peek(9, version).has_value());
  EXPECT_TRUE(fs::exists(file)) << "peek must not unlink corrupt entries";
  EXPECT_EQ(store.stats().corrupt, before.corrupt);
  EXPECT_FALSE(store.load(9).has_value()); // the real load reaps it
  EXPECT_FALSE(fs::exists(file));
  EXPECT_EQ(store.stats().corrupt, before.corrupt + 1);
}

TEST(CacheStoreTest, KeysAndClearVersionTargetOneSchema) {
  TempDir dir("clearversion");
  CacheStore store(dir.str());
  ASSERT_TRUE(store.store(0x11, "current"));
  ASSERT_TRUE(store.store(0x22, "current too"));
  ASSERT_TRUE(store.store(0x33, "will become v1"));
  {
    std::fstream f(dir.path / "0000000000000033.mira",
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(4);
    const char v1 = 1;
    f.write(&v1, 1);
  }

  auto keys = store.keys();
  EXPECT_EQ(keys.size(), 3u);

  // Only the v1 entry goes; the current-schema entries survive.
  EXPECT_EQ(store.clearVersion(1), 1u);
  EXPECT_EQ(store.entryCount(), 2u);
  EXPECT_TRUE(store.load(0x11).has_value());
  EXPECT_TRUE(store.load(0x22).has_value());
  std::uint32_t version = 0;
  EXPECT_FALSE(store.load(0x33, version).has_value());

  // Clearing a schema with no entries is a no-op.
  EXPECT_EQ(store.clearVersion(1), 0u);
}

TEST(CacheStoreTest, ClearReclaimsOrphanedTempFiles) {
  TempDir dir("orphans");
  CacheStore store(dir.str());
  ASSERT_TRUE(store.store(1, "entry"));
  // A crashed writer's leftover temp alongside a foreign file.
  std::ofstream(dir.path / ".00000000000000ff.123.0.tmp") << "orphan";
  std::ofstream(dir.path / "README") << "foreign, must survive";

  store.clear();
  EXPECT_EQ(store.entryCount(), 0u);
  EXPECT_FALSE(fs::exists(dir.path / ".00000000000000ff.123.0.tmp"));
  EXPECT_TRUE(fs::exists(dir.path / "README"));
}

TEST(CacheStoreTest, FlippedPayloadByteFailsTheChecksum) {
  TempDir dir("checksum");
  CacheStore store(dir.str());
  ASSERT_TRUE(store.store(8, "checksummed payload bytes"));
  fs::path file = onlyEntry(dir.path);

  std::fstream f(file, std::ios::in | std::ios::out | std::ios::binary);
  f.seekp(-1, std::ios::end);
  char last = 0;
  f.seekg(-1, std::ios::end);
  f.read(&last, 1);
  f.seekp(-1, std::ios::end);
  last = static_cast<char>(last ^ 0x5a);
  f.write(&last, 1);
  f.close();

  EXPECT_FALSE(store.load(8).has_value());
  EXPECT_EQ(store.stats().corrupt, 1u);
}

TEST(CacheStoreTest, ForeignBytesAreAMiss) {
  TempDir dir("foreign");
  CacheStore store(dir.str());
  // A file with an entry-shaped name but arbitrary contents (e.g. a
  // partial write from a crashed process before atomic rename existed).
  std::ofstream(dir.path / "00000000000000aa.mira") << "not a cache entry";
  EXPECT_FALSE(store.load(0xaa).has_value());
  EXPECT_EQ(store.stats().corrupt, 1u);
}

TEST(CacheStoreTest, LruEvictionKeepsRecentEntries) {
  TempDir dir("lru");
  const std::string payload(512, 'x');
  // Each entry is 512 + 24 header bytes; cap at ~2.5 entries.
  CacheStore store(dir.str(), 1400);
  ASSERT_TRUE(store.store(1, payload));
  ASSERT_TRUE(store.store(2, payload));
  EXPECT_EQ(store.entryCount(), 2u);

  // mtime granularity can be coarse; make the LRU order unambiguous.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ASSERT_TRUE(store.load(1).has_value()); // bump entry 1's recency
  std::this_thread::sleep_for(std::chrono::milliseconds(20));

  ASSERT_TRUE(store.store(3, payload)); // must evict 2 (oldest), not 1 or 3
  EXPECT_GT(store.stats().evictions, 0u);
  EXPECT_TRUE(store.load(1).has_value());
  EXPECT_FALSE(store.load(2).has_value());
  EXPECT_TRUE(store.load(3).has_value());
}

TEST(CacheStoreTest, ConcurrentWritersNeverProduceTornReads) {
  TempDir dir("concurrent");
  CacheStore store(dir.str());
  constexpr int kThreads = 8;
  constexpr int kRounds = 50;
  std::vector<std::thread> threads;
  std::atomic<int> tornReads{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&store, &tornReads, t] {
      for (int round = 0; round < kRounds; ++round) {
        // Everyone hammers the same key with distinct payloads plus a
        // private key; any load must see some writer's complete payload.
        const std::string payload =
            "writer " + std::to_string(t) + " round " + std::to_string(round);
        store.store(0xc0ffee, payload);
        store.store(0x1000 + static_cast<std::uint64_t>(t), payload);
        auto shared = store.load(0xc0ffee);
        if (shared && shared->find("writer ") != 0)
          ++tornReads;
        auto own = store.load(0x1000 + static_cast<std::uint64_t>(t));
        if (own && *own != payload)
          ++tornReads;
      }
    });
  }
  for (auto &thread : threads)
    thread.join();
  EXPECT_EQ(tornReads.load(), 0);
  EXPECT_EQ(store.stats().corrupt, 0u);
  auto final = store.load(0xc0ffee);
  ASSERT_TRUE(final.has_value());
  EXPECT_EQ(final->find("writer "), 0u);
}

// ------------------------------------------------------- model serializer

core::AnalysisResult analyzeOrDie(const std::string &source) {
  core::AnalysisSpec spec;
  spec.name = "test.mc";
  spec.source = source;
  spec.artifacts = core::kArtifactModel | core::kArtifactDiagnostics;
  core::Artifacts artifacts = core::analyze(spec);
  EXPECT_TRUE(artifacts.ok && artifacts.resultV1) << artifacts.diagnostics;
  return *artifacts.resultV1;
}

TEST(ModelSerializeTest, RoundTripIsByteIdentical) {
  for (const std::string *source :
       {&workloads::fig5Source(), &workloads::dgemmSource(),
        &workloads::minifeSource()}) {
    core::AnalysisResult analysis = analyzeOrDie(*source);
    std::string bytes;
    model::serializeModel(analysis.model, bytes);

    model::PerformanceModel restored;
    std::size_t offset = 0;
    ASSERT_TRUE(model::deserializeModel(bytes, offset, restored));
    EXPECT_EQ(offset, bytes.size());
    // emitPython renders every expression, count, call binding, and note,
    // so byte equality here means the models are semantically identical.
    EXPECT_EQ(model::emitPython(restored), model::emitPython(analysis.model));
  }
}

TEST(ModelSerializeTest, RestoredModelEvaluates) {
  core::AnalysisResult analysis = analyzeOrDie(workloads::fig5Source());
  std::string bytes;
  model::serializeModel(analysis.model, bytes);
  model::PerformanceModel restored;
  std::size_t offset = 0;
  ASSERT_TRUE(model::deserializeModel(bytes, offset, restored));

  model::Env env{{"total", 8}, {"y", 16}};
  auto fresh = analysis.model.evaluate("fig5_main", env);
  auto cached = restored.evaluate("fig5_main", env);
  ASSERT_TRUE(fresh.has_value());
  ASSERT_TRUE(cached.has_value());
  EXPECT_EQ(cached->fpInstructions, fresh->fpInstructions);
  EXPECT_EQ(cached->totalInstructions, fresh->totalInstructions);
}

TEST(ModelSerializeTest, RejectsTruncatedAndMutatedBuffers) {
  core::AnalysisResult analysis = analyzeOrDie(workloads::fig5Source());
  std::string bytes;
  model::serializeModel(analysis.model, bytes);

  // Every truncation must fail cleanly, never crash or over-read.
  for (std::size_t cut : {bytes.size() - 1, bytes.size() / 2,
                          std::size_t(5), std::size_t(0)}) {
    model::PerformanceModel out;
    std::size_t offset = 0;
    EXPECT_FALSE(
        model::deserializeModel(bytes.substr(0, cut), offset, out))
        << "truncated to " << cut << " bytes";
  }
}

// ------------------------------------------------- disk-backed batch runs

std::vector<driver::AnalysisRequest> suiteRequests() {
  std::vector<driver::AnalysisRequest> requests;
  for (const auto &kernel : workloads::coverageSuite()) {
    driver::AnalysisRequest request;
    request.name = kernel.name;
    request.source = kernel.source;
    requests.push_back(std::move(request));
  }
  return requests;
}

/// Canonical byte rendering of a batch (same scheme as driver_test.cpp).
std::string fingerprint(const std::vector<driver::AnalysisOutcome> &outcomes) {
  std::string bytes;
  for (const auto &outcome : outcomes) {
    bytes += outcome.name;
    bytes += outcome.ok ? "|ok|" : "|fail|";
    bytes += outcome.diagnostics;
    if (outcome.analysis)
      bytes += model::emitPython(outcome.analysis->model);
    bytes += '\n';
  }
  return bytes;
}

driver::BatchOptions diskOptions(const TempDir &dir, std::size_t threads) {
  driver::BatchOptions options;
  options.threads = threads;
  options.cacheDir = dir.str();
  return options;
}

TEST(DiskCacheBatchTest, SecondRunPerformsZeroRecomputation) {
  TempDir dir("warm");
  auto requests = suiteRequests();

  driver::BatchAnalyzer cold(diskOptions(dir, 2));
  std::string coldPrint = fingerprint(cold.run(requests));
  EXPECT_EQ(cold.stats().failures, 0u);
  EXPECT_EQ(cold.stats().diskHits, 0u);
  EXPECT_EQ(cold.stats().diskMisses, requests.size());
  EXPECT_EQ(cold.stats().diskStores, requests.size());

  // A brand-new analyzer (fresh process, as far as the in-memory level
  // is concerned): everything must come from disk, nothing recomputed.
  driver::BatchAnalyzer warm(diskOptions(dir, 2));
  std::string warmPrint = fingerprint(warm.run(requests));
  EXPECT_EQ(warm.stats().cacheMisses, 0u) << "a warm run recomputed";
  EXPECT_EQ(warm.stats().cacheHits, requests.size());
  EXPECT_EQ(warm.stats().diskHits, requests.size());
  EXPECT_EQ(warm.stats().diskMisses, 0u);
  EXPECT_EQ(warm.stats().failures, 0u);
  EXPECT_EQ(warmPrint, coldPrint) << "disk round trip changed results";
}

TEST(DiskCacheBatchTest, FailedAnalysesAreCachedToo) {
  TempDir dir("failures");
  std::vector<driver::AnalysisRequest> requests;
  driver::AnalysisRequest bad;
  bad.name = "bad.mc";
  bad.source = "int broken(";
  requests.push_back(bad);

  driver::BatchAnalyzer cold(diskOptions(dir, 1));
  auto coldOutcomes = cold.run(requests);
  EXPECT_FALSE(coldOutcomes[0].ok);
  EXPECT_EQ(cold.stats().diskStores, 1u);

  driver::BatchAnalyzer warm(diskOptions(dir, 1));
  auto warmOutcomes = warm.run(requests);
  EXPECT_FALSE(warmOutcomes[0].ok);
  EXPECT_TRUE(warmOutcomes[0].cacheHit);
  EXPECT_EQ(warm.stats().diskHits, 1u);
  EXPECT_EQ(warmOutcomes[0].diagnostics, coldOutcomes[0].diagnostics);
}

TEST(DiskCacheBatchTest, DiskHitsCarryTheModelButNotTheProgram) {
  TempDir dir("program");
  std::vector<driver::AnalysisRequest> requests;
  driver::AnalysisRequest request;
  request.name = "fig5";
  request.source = workloads::fig5Source();
  requests.push_back(request);

  driver::BatchAnalyzer cold(diskOptions(dir, 1));
  auto coldOutcomes = cold.run(requests);
  ASSERT_TRUE(coldOutcomes[0].ok);
  EXPECT_NE(coldOutcomes[0].analysis->program, nullptr);

  driver::BatchAnalyzer warm(diskOptions(dir, 1));
  auto warmOutcomes = warm.run(requests);
  ASSERT_TRUE(warmOutcomes[0].ok);
  EXPECT_TRUE(warmOutcomes[0].cacheHit);
  // The documented restriction: disk hits restore the model only.
  EXPECT_EQ(warmOutcomes[0].analysis->program, nullptr);
  model::Env env{{"total", 8}, {"y", 16}};
  auto cached = warmOutcomes[0].analysis->model.evaluate("fig5_main", env);
  auto fresh = coldOutcomes[0].analysis->model.evaluate("fig5_main", env);
  ASSERT_TRUE(cached.has_value());
  ASSERT_TRUE(fresh.has_value());
  EXPECT_EQ(cached->fpInstructions, fresh->fpInstructions);
}

TEST(DiskCacheBatchTest, CorruptedEntriesFallBackToRecompute) {
  TempDir dir("corrupt");
  auto requests = suiteRequests();

  driver::BatchAnalyzer cold(diskOptions(dir, 2));
  std::string reference = fingerprint(cold.run(requests));

  // Vandalize every cached entry a different way: truncate, rewrite
  // garbage, or chop to below the header.
  int mode = 0;
  for (const auto &it : fs::directory_iterator(dir.path)) {
    if (it.path().extension() != ".mira")
      continue;
    switch (mode++ % 3) {
    case 0:
      fs::resize_file(it.path(), fs::file_size(it.path()) / 2);
      break;
    case 1:
      std::ofstream(it.path(), std::ios::trunc) << "garbage";
      break;
    case 2:
      fs::resize_file(it.path(), 2);
      break;
    }
  }

  driver::BatchAnalyzer recover(diskOptions(dir, 2));
  std::string recovered = fingerprint(recover.run(requests));
  EXPECT_EQ(recover.stats().failures, 0u)
      << "corrupt cache entries must never fail the batch";
  EXPECT_EQ(recover.stats().diskHits, 0u);
  EXPECT_EQ(recover.stats().diskMisses, requests.size());
  EXPECT_EQ(recover.stats().diskStores, requests.size()) << "re-stored";
  EXPECT_EQ(recovered, reference);

  // And the re-stored entries are valid again.
  driver::BatchAnalyzer warm(diskOptions(dir, 2));
  warm.run(requests);
  EXPECT_EQ(warm.stats().diskHits, requests.size());
}

TEST(DiskCacheBatchTest, ConcurrentAnalyzersShareOneDirectory) {
  TempDir dir("shared");
  auto requests = suiteRequests();

  // Two analyzers race over the same cache directory (stand-in for two
  // processes); both must succeed and agree, whoever wins each store.
  driver::BatchAnalyzer a(diskOptions(dir, 2));
  driver::BatchAnalyzer b(diskOptions(dir, 2));
  std::string printA, printB;
  std::thread threadA([&] { printA = fingerprint(a.run(requests)); });
  std::thread threadB([&] { printB = fingerprint(b.run(requests)); });
  threadA.join();
  threadB.join();
  EXPECT_EQ(a.stats().failures, 0u);
  EXPECT_EQ(b.stats().failures, 0u);
  EXPECT_EQ(printA, printB);

  driver::BatchAnalyzer warm(diskOptions(dir, 2));
  warm.run(requests);
  EXPECT_EQ(warm.stats().diskHits, requests.size());
  EXPECT_EQ(warm.stats().failures, 0u);
}

TEST(DiskCacheBatchTest, UnwritableDirectoryDegradesToCompute) {
  // A cache dir that cannot be created (file in the way) must not fail
  // the batch — the disk level just disables itself.
  TempDir dir("unwritable");
  const std::string blocker = (dir.path / "blocker").string();
  std::ofstream(blocker) << "in the way";

  driver::BatchOptions options;
  options.threads = 1;
  options.cacheDir = blocker; // a file, not a directory
  driver::BatchAnalyzer analyzer(options);
  std::vector<driver::AnalysisRequest> requests;
  driver::AnalysisRequest request;
  request.name = "fig5";
  request.source = workloads::fig5Source();
  requests.push_back(request);
  auto outcomes = analyzer.run(requests);
  EXPECT_TRUE(outcomes[0].ok);
  EXPECT_EQ(analyzer.stats().failures, 0u);
}

TEST(DiskCacheBatchTest, ByteCapEvictsButNeverBreaks) {
  TempDir dir("cap");
  auto requests = suiteRequests();
  driver::BatchOptions options = diskOptions(dir, 2);
  options.cacheBytesLimit = 16 * 1024; // far too small for the whole suite
  driver::BatchAnalyzer analyzer(options);
  analyzer.run(requests);
  EXPECT_EQ(analyzer.stats().failures, 0u);
  ASSERT_NE(analyzer.diskCache(), nullptr);
  EXPECT_LE(analyzer.diskCache()->totalBytes(), options.cacheBytesLimit);
  EXPECT_GT(analyzer.diskCache()->stats().evictions, 0u);
}

} // namespace
} // namespace mira
