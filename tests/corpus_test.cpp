// Corpus-manifest tests: tree walking, byte-stable serialization,
// diffing, the "manifest hash + options == cache key" contract that
// makes incremental/sharded batches and cache pruning possible without
// reading source bytes, and seeded property tests over the shard
// partition (every key lands in exactly one shard, assignment is a pure
// function of (key, count)) and the report merge (N shard reports fold
// into the single-process report byte-identically).
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <random>

#include <unistd.h>

#include "corpus/manifest.h"
#include "driver/batch.h"
#include "support/hash.h"

namespace mira::corpus {
namespace {

namespace fs = std::filesystem;

struct TempDir {
  fs::path path;
  explicit TempDir(const std::string &tag) {
    path = fs::temp_directory_path() /
           ("mira_corpus_test_" + tag + "_" + std::to_string(::getpid()));
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
};

void writeFile(const fs::path &path, const std::string &bytes) {
  fs::create_directories(path.parent_path());
  std::ofstream out(path, std::ios::binary);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// ----------------------------------------------------------- building

TEST(ManifestBuild, WalksTreeSortedWithHashesAndSizes) {
  TempDir dir("build");
  writeFile(dir.path / "b.mc", "int b() { return 2; }");
  writeFile(dir.path / "a.mc", "int a() { return 1; }");
  writeFile(dir.path / "sub" / "deep" / "c.mc", "int c() { return 3; }");
  writeFile(dir.path / "ignored.txt", "not a source");

  Manifest manifest;
  std::string error;
  ASSERT_TRUE(buildManifest(dir.path.string(), manifest, error)) << error;
  ASSERT_EQ(manifest.entries.size(), 3u);
  EXPECT_EQ(manifest.root, dir.path.string());
  EXPECT_EQ(manifest.entries[0].path, "a.mc");
  EXPECT_EQ(manifest.entries[1].path, "b.mc");
  EXPECT_EQ(manifest.entries[2].path, "sub/deep/c.mc");
  EXPECT_EQ(manifest.entries[0].contentHash, fnv1a("int a() { return 1; }"));
  EXPECT_EQ(manifest.entries[0].size, 21u);
}

TEST(ManifestBuild, CustomExtensionsAndMissingRoot) {
  TempDir dir("ext");
  writeFile(dir.path / "a.minic", "int a() { return 1; }");
  writeFile(dir.path / "b.mc", "int b() { return 2; }");

  Manifest manifest;
  std::string error;
  ASSERT_TRUE(
      buildManifest(dir.path.string(), manifest, error, {".minic"}));
  ASSERT_EQ(manifest.entries.size(), 1u);
  EXPECT_EQ(manifest.entries[0].path, "a.minic");

  EXPECT_FALSE(buildManifest((dir.path / "nope").string(), manifest, error));
  EXPECT_NE(error.find("not a directory"), std::string::npos);
}

TEST(ManifestBuild, IdenticalTreesSerializeIdentically) {
  TempDir one("stable1"), two("stable2");
  for (const TempDir *dir : {&one, &two}) {
    writeFile(dir->path / "x.mc", "int x() { return 0; }");
    writeFile(dir->path / "y.mc", "int y() { return 1; }");
  }
  Manifest a, b;
  std::string error;
  ASSERT_TRUE(buildManifest(one.path.string(), a, error));
  ASSERT_TRUE(buildManifest(two.path.string(), b, error));
  // Roots differ, so full serializations differ — but the entry blocks
  // are identical: serialize with the roots normalized.
  a.root = b.root = "corpus";
  EXPECT_EQ(serializeManifest(a), serializeManifest(b));
}

// ------------------------------------------------------ serialization

Manifest sampleManifest() {
  Manifest manifest;
  manifest.root = "some/root";
  manifest.entries = {{"a.mc", 0x1111u, 10}, {"b/b.mc", 0x2222u, 20},
                      {"c.mc", 0x3333u, 0}};
  return manifest;
}

TEST(ManifestSerde, RoundTripsThroughBytesAndFiles) {
  const Manifest manifest = sampleManifest();
  const std::string bytes = serializeManifest(manifest);

  Manifest decoded;
  std::string error;
  ASSERT_TRUE(deserializeManifest(bytes, decoded, error)) << error;
  EXPECT_EQ(decoded.root, manifest.root);
  ASSERT_EQ(decoded.entries.size(), manifest.entries.size());
  for (std::size_t i = 0; i < decoded.entries.size(); ++i) {
    EXPECT_EQ(decoded.entries[i].path, manifest.entries[i].path);
    EXPECT_EQ(decoded.entries[i].contentHash, manifest.entries[i].contentHash);
    EXPECT_EQ(decoded.entries[i].size, manifest.entries[i].size);
  }

  TempDir dir("serde");
  const std::string file = (dir.path / "m.manifest").string();
  ASSERT_TRUE(writeManifestFile(file, manifest, error)) << error;
  Manifest loaded;
  ASSERT_TRUE(loadManifestFile(file, loaded, error)) << error;
  EXPECT_EQ(serializeManifest(loaded), bytes);
}

TEST(ManifestSerde, RejectsCorruption) {
  const std::string good = serializeManifest(sampleManifest());
  Manifest decoded;
  std::string error;

  std::string badMagic = good;
  badMagic[0] = 'X';
  EXPECT_FALSE(deserializeManifest(badMagic, decoded, error));
  EXPECT_NE(error.find("magic"), std::string::npos);

  std::string badVersion = good;
  badVersion[4] = 99;
  EXPECT_FALSE(deserializeManifest(badVersion, decoded, error));
  EXPECT_NE(error.find("version"), std::string::npos);

  // Flipping any payload byte must trip the checksum (or an earlier
  // structural check) — never round-trip silently.
  std::string flipped = good;
  flipped[good.size() / 2] ^= 0x40;
  EXPECT_FALSE(deserializeManifest(flipped, decoded, error));

  EXPECT_FALSE(
      deserializeManifest(good.substr(0, good.size() - 3), decoded, error));
  EXPECT_FALSE(deserializeManifest(good + "x", decoded, error));

  Manifest unsorted = sampleManifest();
  std::swap(unsorted.entries[0], unsorted.entries[2]);
  EXPECT_FALSE(
      deserializeManifest(serializeManifest(unsorted), decoded, error));
  EXPECT_NE(error.find("sorted"), std::string::npos);
}

// ------------------------------------------------------------ diffing

TEST(ManifestDiffTest, ClassifiesAddedChangedRemoved) {
  Manifest from, to;
  from.entries = {{"dropped.mc", 1, 1}, {"same.mc", 2, 2},
                  {"touched.mc", 3, 3}};
  to.entries = {{"new.mc", 9, 9}, {"same.mc", 2, 2}, {"touched.mc", 30, 3}};

  const ManifestDiff diff = diffManifests(from, to);
  ASSERT_EQ(diff.added.size(), 1u);
  EXPECT_EQ(diff.added[0].path, "new.mc");
  ASSERT_EQ(diff.changed.size(), 1u);
  EXPECT_EQ(diff.changed[0].path, "touched.mc");
  EXPECT_EQ(diff.changed[0].contentHash, 30u); // new-side entry
  ASSERT_EQ(diff.removed.size(), 1u);
  EXPECT_EQ(diff.removed[0], "dropped.mc");
  EXPECT_FALSE(diff.empty());

  EXPECT_TRUE(diffManifests(to, to).empty());
  EXPECT_TRUE(diffManifests(Manifest{}, Manifest{}).empty());
}

// ------------------------------------------- the cache-key contract

TEST(ManifestKeys, ContentHashPlusOptionsIsTheCacheKey) {
  // The property the whole incremental/shard/prune design rests on:
  // for any source and options, the manifest's stored hash continued
  // with the options reproduces driver::requestKey exactly.
  std::mt19937_64 rng(20260727u);
  for (int i = 0; i < 200; ++i) {
    std::string source;
    const std::size_t length = rng() % 400;
    for (std::size_t j = 0; j < length; ++j)
      source.push_back(static_cast<char>(rng() & 0xff));

    core::AnalysisSpec spec;
    spec.source = source;
    spec.options.compile.compiler.optimize = (rng() & 1) != 0;
    spec.options.compile.compiler.vectorize = (rng() & 1) != 0;
    spec.options.metrics.assumeBranchesTaken = (rng() & 1) != 0;

    EXPECT_EQ(driver::requestKey(spec),
              driver::requestKeyFromContentHash(contentHash(source),
                                                spec.options));
  }
}

// ------------------------------------------------- shard properties

TEST(ShardPlanning, ParsesOneBasedSpecs) {
  driver::ShardSpec shard;
  ASSERT_TRUE(driver::parseShardSpec("1/1", shard));
  EXPECT_EQ(shard.index, 0u);
  EXPECT_EQ(shard.count, 1u);
  ASSERT_TRUE(driver::parseShardSpec("3/8", shard));
  EXPECT_EQ(shard.index, 2u);
  EXPECT_EQ(shard.count, 8u);

  for (const char *bad : {"", "/", "1/", "/4", "0/4", "5/4", "a/4", "1/b",
                          "1.5/4", "-1/4", "1",
                          // strtoull saturation must be rejected, not
                          // accepted as a shard that matches nothing
                          "1/99999999999999999999999",
                          "99999999999999999999999/4"})
    EXPECT_FALSE(driver::parseShardSpec(bad, shard)) << bad;
}

TEST(ShardPlanning, EveryKeyLandsInExactlyOneShard) {
  std::mt19937_64 rng(4242u);
  for (int round = 0; round < 50; ++round) {
    const std::size_t count = 1 + rng() % 9;
    for (int k = 0; k < 40; ++k) {
      const std::uint64_t key = rng();
      std::size_t owners = 0;
      for (std::size_t index = 0; index < count; ++index)
        if (driver::keyInShard(key, {index, count}))
          ++owners;
      ASSERT_EQ(owners, 1u) << "key " << key << " count " << count;
    }
  }
}

TEST(ShardPlanning, AssignmentIsAPureFunctionOfKeyAndCount) {
  std::mt19937_64 rng(777u);
  for (int k = 0; k < 100; ++k) {
    const std::uint64_t key = rng();
    const std::size_t count = 1 + rng() % 7;
    for (std::size_t index = 0; index < count; ++index)
      EXPECT_EQ(driver::keyInShard(key, {index, count}),
                driver::keyInShard(key, {index, count}));
  }
}

// ------------------------------------------------------ report merge

driver::BatchReportEntry entry(const std::string &name, std::uint64_t key,
                               bool ok) {
  driver::BatchReportEntry e;
  e.name = name;
  e.key = key;
  e.ok = ok;
  return e;
}

TEST(BatchReport, RoundTripsAndRejectsCorruption) {
  driver::BatchReport report;
  report.entries = {entry("a.mc", 0xAAAA, true), entry("b.mc", 0xBBBB, false)};
  report.stats.requests = 2;
  report.stats.failures = 1;
  report.stats.diskStores = 2;
  report.stats.wallSeconds = 123.0; // must NOT survive serialization

  const std::string bytes = driver::serializeBatchReport(report);
  driver::BatchReport decoded;
  std::string error;
  ASSERT_TRUE(driver::deserializeBatchReport(bytes, decoded, error)) << error;
  ASSERT_EQ(decoded.entries.size(), 2u);
  EXPECT_EQ(decoded.entries[1].name, "b.mc");
  EXPECT_FALSE(decoded.entries[1].ok);
  EXPECT_EQ(decoded.stats.requests, 2u);
  EXPECT_EQ(decoded.stats.failures, 1u);
  EXPECT_EQ(decoded.stats.diskStores, 2u);
  EXPECT_EQ(decoded.stats.wallSeconds, 0.0);

  std::string flipped = bytes;
  flipped[bytes.size() / 2] ^= 1;
  EXPECT_FALSE(driver::deserializeBatchReport(flipped, decoded, error));
  EXPECT_FALSE(driver::deserializeBatchReport(
      bytes.substr(0, bytes.size() - 1), decoded, error));
  EXPECT_FALSE(driver::deserializeBatchReport(bytes + "z", decoded, error));
}

TEST(BatchReport, ShardMergeEqualsWholeRunByteForByte) {
  // Simulate the multi-process invariant in-process: split a "whole
  // run" report into per-shard reports by key, merge them back, and
  // require identical bytes. Randomized shapes, fixed seed.
  std::mt19937_64 rng(99u);
  for (int round = 0; round < 30; ++round) {
    const std::size_t count = 1 + rng() % 5;
    driver::BatchReport whole;
    const std::size_t n = rng() % 24;
    for (std::size_t i = 0; i < n; ++i) {
      char name[32];
      std::snprintf(name, sizeof(name), "src_%03zu.mc", i);
      whole.entries.push_back(entry(name, rng(), (rng() & 7) != 0));
    }
    whole.stats.requests = n;

    std::vector<driver::BatchReport> shards(count);
    for (const auto &e : whole.entries) {
      for (std::size_t index = 0; index < count; ++index)
        if (driver::keyInShard(e.key, {index, count})) {
          shards[index].entries.push_back(e);
          shards[index].stats.requests += 1;
          break;
        }
    }
    const driver::BatchReport merged = driver::mergeBatchReports(shards);
    EXPECT_EQ(driver::serializeBatchReport(merged),
              driver::serializeBatchReport(whole));
  }
}

TEST(BatchReport, MergeStatsSumCountersAndMaxWallClock) {
  driver::BatchStats a, b;
  a.requests = 3;
  a.diskStores = 2;
  a.wallSeconds = 1.5;
  b.requests = 4;
  b.diskStores = 1;
  b.wallSeconds = 2.5;
  const driver::BatchStats merged = driver::mergeBatchStats({a, b});
  EXPECT_EQ(merged.requests, 7u);
  EXPECT_EQ(merged.diskStores, 3u);
  EXPECT_EQ(merged.wallSeconds, 2.5);
}

TEST(BatchReport, EmptyShardsAreMergeIdentity) {
  // A shard can legitimately select zero entries (--since with nothing
  // changed, or an unlucky key split): merging it in must change
  // nothing, including the serialized bytes.
  driver::BatchReport work;
  work.entries = {entry("a.mc", 0x1, true), entry("b.mc", 0x2, false)};
  work.stats.requests = 2;
  work.stats.failures = 1;
  const driver::BatchReport empty;

  const std::string alone =
      driver::serializeBatchReport(driver::mergeBatchReports({work}));
  EXPECT_EQ(driver::serializeBatchReport(
                driver::mergeBatchReports({empty, work, empty})),
            alone);
  // All-empty input merges to the empty report, which round-trips.
  const driver::BatchReport nothing =
      driver::mergeBatchReports({empty, empty});
  EXPECT_TRUE(nothing.entries.empty());
  EXPECT_EQ(nothing.stats.requests, 0u);
  driver::BatchReport decoded;
  std::string error;
  ASSERT_TRUE(driver::deserializeBatchReport(
      driver::serializeBatchReport(nothing), decoded, error))
      << error;
  EXPECT_TRUE(decoded.entries.empty());
}

TEST(BatchReport, DuplicateKeysAcrossShardsMergeDeterministically) {
  // Overlapping shard runs (operator error: the same shard executed
  // twice) must not silently drop or dedup entries — the merged report
  // shows the duplicate work, in an input-order-independent order.
  driver::BatchReport first, second;
  first.entries = {entry("dup.mc", 0xD, true), entry("x.mc", 0x1, true)};
  first.stats.requests = 2;
  second.entries = {entry("dup.mc", 0xD, true), entry("y.mc", 0x2, true)};
  second.stats.requests = 2;

  const driver::BatchReport merged =
      driver::mergeBatchReports({first, second});
  ASSERT_EQ(merged.entries.size(), 4u);
  EXPECT_EQ(merged.entries[0].name, "dup.mc");
  EXPECT_EQ(merged.entries[1].name, "dup.mc");
  EXPECT_EQ(merged.stats.requests, 4u);
  EXPECT_EQ(driver::serializeBatchReport(merged),
            driver::serializeBatchReport(
                driver::mergeBatchReports({second, first})));

  // Same name under different keys (same path, two option configs)
  // orders by key — the serialize-stable tiebreak.
  driver::BatchReport opts;
  opts.entries = {entry("dup.mc", 0xF, true)};
  const driver::BatchReport withOpts =
      driver::mergeBatchReports({opts, merged});
  ASSERT_EQ(withOpts.entries.size(), 5u);
  EXPECT_EQ(withOpts.entries[2].key, 0xFu);
}

TEST(BatchReport, MergeIsCommutativeAndAssociativeProperty) {
  // Seeded property: for random shard splits, any merge order and any
  // merge tree produce the same serialized report. This is what lets
  // CI merge shard reports in whatever order the jobs finish.
  std::mt19937_64 rng(0x4d657267ull); // "Merg"
  for (int round = 0; round < 40; ++round) {
    const std::size_t parts = 2 + rng() % 4;
    std::vector<driver::BatchReport> shards(parts);
    for (std::size_t p = 0; p < parts; ++p) {
      const std::size_t n = rng() % 8;
      for (std::size_t i = 0; i < n; ++i) {
        char name[32];
        std::snprintf(name, sizeof(name), "s%zu_%02zu.mc", p, i);
        shards[p].entries.push_back(entry(name, rng(), (rng() & 3) != 0));
      }
      shards[p].stats.requests = n;
      shards[p].stats.failures = rng() % (n + 1);
      shards[p].stats.wallSeconds = static_cast<double>(rng() % 100) / 10.0;
    }

    const std::string flat =
        driver::serializeBatchReport(driver::mergeBatchReports(shards));

    // Commutativity: a random permutation merges to the same bytes.
    std::vector<driver::BatchReport> shuffled = shards;
    std::shuffle(shuffled.begin(), shuffled.end(), rng);
    EXPECT_EQ(driver::serializeBatchReport(
                  driver::mergeBatchReports(shuffled)),
              flat);

    // Associativity: fold pairwise left-to-right instead of all at
    // once. wallSeconds folds through max, so nesting cannot skew it.
    driver::BatchReport folded = shards[0];
    for (std::size_t p = 1; p < parts; ++p)
      folded = driver::mergeBatchReports({folded, shards[p]});
    EXPECT_EQ(driver::serializeBatchReport(folded), flat);
    EXPECT_EQ(folded.stats.wallSeconds,
              driver::mergeBatchReports(shards).stats.wallSeconds);
  }
}

} // namespace
} // namespace mira::corpus
