// Randomized end-to-end property tests: generate MiniC kernels with
// random affine loop nests, guards and FP bodies; require the statically
// evaluated model's FPI to equal the simulator's retired FPI exactly.
// This is the paper's validation methodology turned into a property:
// for affine SCoPs the static model is not an estimate, it is exact.
#include <gtest/gtest.h>

#include <random>
#include <sstream>

#include "core/artifacts.h"
#include "core/mira.h"
#include "model/model.h"
#include "model/serialize.h"
#include "symbolic/interner.h"

namespace mira {
namespace {

using sim::Value;

/// Full static pipeline via the v2 artifact API, in the v1 result shape
/// (model + live program) these tests consume; null on failure.
std::shared_ptr<const core::AnalysisResult>
analyzeFull(const std::string &src, DiagnosticEngine &diags) {
  core::AnalysisSpec spec;
  spec.name = "random.mc";
  spec.source = src;
  spec.artifacts = core::kArtifactModel | core::kArtifactDiagnostics |
                   core::kArtifactProgram;
  core::Artifacts artifacts = core::analyze(spec, diags);
  return artifacts.ok ? artifacts.resultV1 : nullptr;
}

/// A random but well-formed kernel: up to 3 nested affine loops over a
/// parametric bound, an optional affine or congruence guard, and a body
/// accumulating FP work.
std::string makeKernel(std::mt19937 &rng) {
  std::uniform_int_distribution<int> depthDist(1, 3);
  std::uniform_int_distribution<int> styleDist(0, 3);
  std::uniform_int_distribution<int> smallDist(0, 3);

  int depth = depthDist(rng);
  std::ostringstream out;
  out << "double kernel(int n) {\n";
  out << "  double acc = 0.0;\n";
  const char *vars[] = {"i", "j", "k"};
  std::string indent = "  ";
  bool innerStrided = false;
  for (int d = 0; d < depth; ++d) {
    const char *v = vars[d];
    int style = styleDist(rng);
    if (d + 1 == depth)
      innerStrided = style == 3;
    out << indent << "for (int " << v << " = ";
    switch (style) {
    case 0: // rectangular 0..n-1
      out << "0; " << v << " < n; " << v << "++",
          (void)0;
      break;
    case 1: // inclusive 1..n
      out << "1; " << v << " <= n; " << v << "++";
      break;
    case 2: // triangular on the previous variable
      if (d > 0)
        out << vars[d - 1] << "; " << v << " < n; " << v << "++";
      else
        out << "0; " << v << " < n; " << v << "++";
      break;
    default: // strided
      out << "0; " << v << " < n; " << v << " += " << (2 + smallDist(rng));
      break;
    }
    out << ") {\n";
    indent += "  ";
  }

  // Optional guard at the innermost level. Stride + guard needs a user
  // annotation (an arithmetic-progression/congruence intersection the
  // counter deliberately refuses to guess), so exactness is only
  // expected without that combination.
  int guard = innerStrided ? 0 : styleDist(rng);
  const char *inner = vars[depth - 1];
  if (guard == 1) {
    out << indent << "if (" << inner << " >= " << (1 + smallDist(rng))
        << ") {\n";
    indent += "  ";
  } else if (guard == 2) {
    out << indent << "if (" << inner << " % " << (2 + smallDist(rng))
        << " != 0) {\n";
    indent += "  ";
  }

  out << indent << "acc = acc + 1.5;\n";
  out << indent << "acc = acc * 1.000001;\n";

  if (guard == 1 || guard == 2) {
    indent.resize(indent.size() - 2);
    out << indent << "}\n";
  }
  for (int d = depth - 1; d >= 0; --d) {
    indent.resize(indent.size() - 2);
    out << indent << "}\n";
  }
  out << "  return acc;\n";
  out << "}\n";
  return out.str();
}

class RandomKernelFPI : public ::testing::TestWithParam<int> {};

TEST_P(RandomKernelFPI, StaticEqualsDynamic) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 7919u + 13u);
  for (int trial = 0; trial < 8; ++trial) {
    std::string src = makeKernel(rng);
    SCOPED_TRACE(src);
    DiagnosticEngine diags;
    auto analysis = analyzeFull(src, diags);
    ASSERT_TRUE(analysis != nullptr) << diags.str();
    for (std::int64_t n : {1, 2, 7, 13}) {
      auto staticFPI = analysis->staticFPI("kernel", {{"n", n}});
      ASSERT_TRUE(staticFPI.has_value()) << "n=" << n;
      auto r = core::simulate(*analysis->program, "kernel",
                              {Value::ofInt(n)});
      ASSERT_TRUE(r.ok) << r.error;
      EXPECT_DOUBLE_EQ(*staticFPI, r.fpiOf("kernel")) << "n=" << n;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomKernelFPI,
                         ::testing::Range(1, 13));

// Array kernels: random unit-stride FP pipelines that may or may not
// vectorize; static FPI must stay exact either way.
std::string makeArrayKernel(std::mt19937 &rng) {
  std::uniform_int_distribution<int> opsDist(1, 3);
  std::uniform_int_distribution<int> opDist(0, 3);
  const char *ops[] = {"+", "-", "*", "/"};
  std::ostringstream out;
  out << "void kernel(double* a, double* b, double* c, int n) {\n";
  out << "  for (int i = 0; i < n; i++) {\n";
  int nops = opsDist(rng);
  out << "    c[i] = a[i]";
  for (int k = 0; k < nops; ++k)
    out << " " << ops[opDist(rng)] << " b[i]";
  out << ";\n";
  out << "  }\n";
  out << "}\n";
  out << "double driver(int n) {\n";
  out << "  double a[n];\n";
  out << "  double b[n];\n";
  out << "  double c[n];\n";
  out << "  for (int i = 0; i < n; i++) {\n";
  out << "    a[i] = 2.0;\n";
  out << "    b[i] = 4.0;\n";
  out << "    c[i] = 0.0;\n";
  out << "  }\n";
  out << "  kernel(a, b, c, n);\n";
  out << "  return c[0];\n";
  out << "}\n";
  return out.str();
}

class RandomArrayKernelFPI : public ::testing::TestWithParam<int> {};

TEST_P(RandomArrayKernelFPI, StaticEqualsDynamicVectorizedOrNot) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 104729u + 7u);
  for (int trial = 0; trial < 6; ++trial) {
    std::string src = makeArrayKernel(rng);
    SCOPED_TRACE(src);
    DiagnosticEngine diags;
    auto analysis = analyzeFull(src, diags);
    ASSERT_TRUE(analysis != nullptr) << diags.str();
    for (std::int64_t n : {1, 2, 3, 16, 31}) {
      auto staticFPI = analysis->staticFPI("driver", {{"n", n}});
      ASSERT_TRUE(staticFPI.has_value());
      auto r = core::simulate(*analysis->program, "driver",
                              {Value::ofInt(n)});
      ASSERT_TRUE(r.ok) << r.error;
      EXPECT_DOUBLE_EQ(*staticFPI, r.fpiOf("driver")) << "n=" << n;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomArrayKernelFPI,
                         ::testing::Range(1, 7));

// ------------------------------------------------ symbolic interner laws

namespace expr_props {

using symbolic::Expr;
using symbolic::ExprNode;

/// Ground truth for Expr::equals: field-by-field recursion over the
/// public node shape, independent of hashes, cached keys, and interner
/// bookkeeping.
bool deepStructuralEqual(const ExprNode &a, const ExprNode &b) {
  if (a.kind != b.kind || a.value != b.value || a.name != b.name ||
      a.operands.size() != b.operands.size())
    return false;
  for (std::size_t i = 0; i < a.operands.size(); ++i)
    if (!deepStructuralEqual(*a.operands[i], *b.operands[i]))
      return false;
  return true;
}

/// Random expression over adversarial parameter names. The names embed
/// the metacharacters of the old string-valued ordering key ("," and
/// "(") so that distinct trees could collide under naive string
/// concatenation — exactly what hash-consed equality must not do.
Expr randomExpr(std::mt19937 &rng, int depth) {
  static const char *params[] = {"N", "M", "a,b", "a", "b", "x(", "x", "("};
  std::uniform_int_distribution<int> paramDist(0, 7);
  std::uniform_int_distribution<std::int64_t> constDist(-4, 4);
  if (depth <= 0) {
    if (std::uniform_int_distribution<int>(0, 1)(rng))
      return Expr::param(params[paramDist(rng)]);
    return Expr::intConst(constDist(rng));
  }
  switch (std::uniform_int_distribution<int>(0, 7)(rng)) {
  case 0:
    return randomExpr(rng, depth - 1) + randomExpr(rng, depth - 1);
  case 1:
    return randomExpr(rng, depth - 1) * randomExpr(rng, depth - 1);
  case 2:
    return Expr::floorDiv(randomExpr(rng, depth - 1),
                          randomExpr(rng, depth - 1));
  case 3:
    return Expr::mod(randomExpr(rng, depth - 1), randomExpr(rng, depth - 1));
  case 4:
    return Expr::min(randomExpr(rng, depth - 1), randomExpr(rng, depth - 1));
  case 5:
    return Expr::max(randomExpr(rng, depth - 1), randomExpr(rng, depth - 1));
  case 6:
    return Expr::sum(params[paramDist(rng)], randomExpr(rng, depth - 1),
                     randomExpr(rng, depth - 1), randomExpr(rng, depth - 1));
  default:
    return Expr::param(params[paramDist(rng)]);
  }
}

class ExprEqualsProperty : public ::testing::TestWithParam<int> {};

TEST_P(ExprEqualsProperty, HashConsedEqualsMatchesDeepStructuralEquality) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 48271u + 11u);
  std::uniform_int_distribution<int> coin(0, 1);
  for (int trial = 0; trial < 60; ++trial) {
    // Half the trials replay the same seed (structurally identical
    // construction, so equals() must say true); half draw independent
    // trees (usually different, and equals() must agree with the ground
    // truth either way). Separate interners force equals() off the
    // pointer-identity fast path onto the hash + deep-walk fallback.
    const unsigned seedA = rng();
    const unsigned seedB = coin(rng) ? seedA : rng();
    symbolic::ExprInterner left, right;
    Expr a, b;
    {
      symbolic::ExprInterner::Scope scope(left);
      std::mt19937 gen(seedA);
      a = randomExpr(gen, 3);
    }
    {
      symbolic::ExprInterner::Scope scope(right);
      std::mt19937 gen(seedB);
      b = randomExpr(gen, 3);
    }
    SCOPED_TRACE(a.str() + "  vs  " + b.str());
    EXPECT_EQ(a.equals(b), deepStructuralEqual(a.node(), b.node()));
    if (seedA == seedB)
      EXPECT_TRUE(a.equals(b));
    EXPECT_TRUE(a.equals(a));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExprEqualsProperty, ::testing::Range(1, 5));

class ModelRoundTripProperty : public ::testing::TestWithParam<int> {};

TEST_P(ModelRoundTripProperty, SerializeDeserializeReinternIsByteIdentical) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 65537u + 3u);
  for (int trial = 0; trial < 20; ++trial) {
    model::PerformanceModel m;
    m.sourceFile = "prop.mc";
    model::FunctionModel fn;
    fn.sourceName = "f";
    fn.modelName = "f_1";
    std::uniform_int_distribution<int> stepsDist(1, 4);
    const int steps = stepsDist(rng);
    for (int s = 0; s < steps; ++s) {
      model::CountStep step;
      step.multiplier = randomExpr(rng, 3);
      step.opcodes[isa::Opcode::ADDSD] = 1;
      fn.counts.push_back(std::move(step));
    }
    m.functions.push_back(std::move(fn));

    std::string bytes;
    model::serializeModel(m, bytes);

    // Deserialization re-enters an interner (Expr::fromNode); the trip
    // must not move a single byte, or cached and fresh models would
    // diverge under the daemon's differential pins.
    model::PerformanceModel restored;
    std::size_t offset = 0;
    ASSERT_TRUE(model::deserializeModel(bytes, offset, restored));
    ASSERT_EQ(offset, bytes.size());

    std::string bytesAgain;
    model::serializeModel(restored, bytesAgain);
    EXPECT_EQ(bytes, bytesAgain);

    // And the restored expressions are structurally the ones serialized.
    for (std::size_t s = 0; s < m.functions[0].counts.size(); ++s) {
      EXPECT_TRUE(restored.functions[0].counts[s].multiplier.equals(
          m.functions[0].counts[s].multiplier));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ModelRoundTripProperty,
                         ::testing::Range(1, 5));

} // namespace expr_props

} // namespace
} // namespace mira
