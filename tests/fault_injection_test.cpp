// Fault-injection + differential tests for daemon-side manifest batch
// execution (docs/SERVING.md, "Serving whole corpora").
//
// The MIRA_FAULT environment variable (support/fault_injection.h) arms
// deterministic failure points inside forked mira-cli processes:
//
//   cache-write:fail:N[+]   the Nth (and later, with '+') disk-cache
//                           store reports failure, like a full disk;
//   compute:crash:N         the process SIGKILLs itself at the start of
//                           the Nth analysis — power-loss semantics, no
//                           unwinding, no buffered-IO flush;
//   compute:stall:N:MS      the Nth analysis sleeps MS milliseconds
//                           first, opening a deterministic window for
//                           the test to kill a peer mid-conversation.
//
// Scenarios pinned here:
//   - differential runner: one-shot local batch, daemon manifest batch,
//     and merged N-shard local runs agree byte-for-byte (reports and
//     cache directories);
//   - kill -9 the daemon mid-manifest-batch: the partial cache has zero
//     corrupt entries, and a restarted daemon's rerun answers the exact
//     bytes a local run over the same partial cache answers;
//   - client disconnect mid-batch: the daemon cancels the batch (counted
//     in server_manifest_batch_cancelled_total) and stays healthy;
//   - injected cache-write failures degrade to recompute: identical
//     report bytes from the faulted local and faulted daemon runs, and
//     the cache heals on a clean rerun;
//   - crash-at-Nth-compute in a local shard process: partial valid
//     cache, and a rerun converges on the reference cache bytes;
//   - malformed MIRA_FAULT clauses are ignored, never fatal.
//
// MIRA_CLI_PATH is injected by CMake ($<TARGET_FILE:mira-cli>), so the
// tests always drive the binary they were built with.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <csignal>
#include <sys/wait.h>
#include <unistd.h>

#include "driver/batch.h"
#include "support/cache_store.h"
#include "support/fault_injection.h"

namespace mira {
namespace {

namespace fs = std::filesystem;

struct TempDir {
  fs::path path;
  explicit TempDir(const std::string &tag) {
    path = fs::temp_directory_path() /
           ("mira_fault_test_" + tag + "_" + std::to_string(::getpid()));
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
};

void writeFile(const fs::path &path, const std::string &bytes) {
  fs::create_directories(path.parent_path());
  std::ofstream out(path, std::ios::binary);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

std::string readFile(const fs::path &path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

/// Distinct single-loop kernels; content (and cache key) unique per file.
void writeCorpus(const fs::path &root, int count) {
  for (int i = 0; i < count; ++i) {
    char name[32];
    std::snprintf(name, sizeof(name), "kernel_%02d.mc", i);
    char source[256];
    std::snprintf(source, sizeof(source),
                  "int kernel_%02d(int n) {\n"
                  "  int s = %d;\n"
                  "  for (int i = 0; i < n; i++) {\n"
                  "    s = s + i * %d;\n"
                  "  }\n"
                  "  return s;\n"
                  "}\n",
                  i, i, i + 1);
    writeFile(root / name, source);
  }
}

/// Run one CLI invocation synchronously with an optional MIRA_FAULT
/// spec; returns the exit code (-1 when killed by a signal).
int runCli(const std::vector<std::string> &args, const fs::path &logPath,
           const std::string &fault = std::string()) {
  std::string command;
  if (!fault.empty())
    command += "MIRA_FAULT='" + fault + "' ";
  command += MIRA_CLI_PATH;
  for (const std::string &arg : args)
    command += " '" + arg + "'";
  command += " > '" + logPath.string() + "' 2>&1";
  const int status = std::system(command.c_str());
  if (status == -1)
    return -1;
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

/// Fork+exec one CLI invocation (optionally fault-armed); returns the
/// child pid. The caller owns waiting or killing.
pid_t spawnCli(const std::vector<std::string> &args, const fs::path &logPath,
               const std::string &fault = std::string()) {
  const pid_t pid = ::fork();
  if (pid != 0)
    return pid;
  if (!fault.empty())
    ::setenv("MIRA_FAULT", fault.c_str(), 1);
  std::FILE *log = std::freopen(logPath.string().c_str(), "w", stdout);
  (void)log;
  ::dup2(::fileno(stdout), ::fileno(stderr));
  std::vector<char *> argv;
  std::string cli = MIRA_CLI_PATH;
  argv.push_back(cli.data());
  std::vector<std::string> copies = args;
  for (std::string &arg : copies)
    argv.push_back(arg.data());
  argv.push_back(nullptr);
  ::execv(cli.c_str(), argv.data());
  std::_Exit(127); // exec failed
}

/// Exit code, or -1 when the child died on a signal (e.g. SIGKILL).
int waitFor(pid_t pid) {
  int status = 0;
  if (::waitpid(pid, &status, 0) != pid)
    return -1;
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

/// Spawn a daemon and block until its socket accepts; empty `fault`
/// arms nothing.
pid_t startDaemon(const fs::path &socket, const fs::path &cacheDir,
                  const fs::path &logPath,
                  const std::string &fault = std::string(),
                  const std::vector<std::string> &extra = {}) {
  std::vector<std::string> args = {"serve",       "--socket",
                                   socket.string(), "--cache-dir",
                                   cacheDir.string(), "--threads",
                                   "1"};
  args.insert(args.end(), extra.begin(), extra.end());
  const pid_t pid = spawnCli(args, logPath, fault);
  for (int i = 0; i < 100; ++i) {
    if (fs::exists(socket))
      return pid;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  ADD_FAILURE() << "daemon never bound " << socket;
  return pid;
}

void stopDaemon(pid_t pid, const fs::path &socket, const fs::path &dir) {
  if (runCli({"client", "shutdown", "--socket", socket.string()},
             dir / "shutdown.log") != 0)
    ::kill(pid, SIGTERM);
  waitFor(pid);
}

driver::BatchReport loadReport(const fs::path &path) {
  driver::BatchReport report;
  std::string error;
  EXPECT_TRUE(driver::deserializeBatchReport(readFile(path), report, error))
      << path << ": " << error;
  return report;
}

/// Assert two cache directories hold the same entry files with the
/// same bytes.
void expectCachesIdentical(const fs::path &a, const fs::path &b) {
  std::vector<std::string> aNames, bNames;
  for (const auto &it : fs::directory_iterator(a))
    aNames.push_back(it.path().filename().string());
  for (const auto &it : fs::directory_iterator(b))
    bNames.push_back(it.path().filename().string());
  std::sort(aNames.begin(), aNames.end());
  std::sort(bNames.begin(), bNames.end());
  ASSERT_EQ(aNames, bNames) << a << " vs " << b;
  for (const std::string &name : aNames)
    EXPECT_EQ(readFile(a / name), readFile(b / name))
        << "cache entry " << name << " differs";
}

/// Every entry loads and validates; the store saw no corruption.
void expectCacheClean(const fs::path &dir) {
  CacheStore store(dir.string());
  for (std::uint64_t key : store.keys())
    EXPECT_TRUE(store.load(key).has_value()) << key;
  EXPECT_EQ(store.stats().corrupt, 0u) << dir;
}

// ------------------------------------------------------------- tests

TEST(FaultInjection, UnarmedProcessReportsNoFaults) {
  // This test binary never sets MIRA_FAULT: the hooks must be inert.
  EXPECT_FALSE(fault::armed());
  EXPECT_EQ(fault::hit("cache-write"), fault::Action::none);
  EXPECT_FALSE(fault::shouldFail("compute"));
}

TEST(FaultInjection, DifferentialLocalDaemonAndShardsAgreeByteForByte) {
  constexpr int kSources = 6;
  constexpr int kShards = 2;
  TempDir dir("differential");
  const fs::path corpus = dir.path / "corpus";
  writeCorpus(corpus, kSources);
  const fs::path manifest = dir.path / "corpus.manifest";
  ASSERT_EQ(runCli({"manifest", "build", corpus.string(), "--out",
                    manifest.string()},
                   dir.path / "build.log"),
            0);

  // Arm 1: one-shot local run, cold cache.
  const fs::path localCache = dir.path / "cache_local";
  const fs::path localReport = dir.path / "local.report";
  ASSERT_EQ(runCli({"batch", "--manifest", manifest.string(), "--cache-dir",
                    localCache.string(), "--report", localReport.string()},
                   dir.path / "local.log"),
            0)
      << readFile(dir.path / "local.log");

  // Arm 2: the same manifest through a cold daemon.
  const fs::path daemonCache = dir.path / "cache_daemon";
  const fs::path daemonReport = dir.path / "daemon.report";
  const fs::path socket = dir.path / "daemon.sock";
  const pid_t daemon =
      startDaemon(socket, daemonCache, dir.path / "daemon.log");
  ASSERT_EQ(runCli({"client", "batch", "--manifest", manifest.string(),
                    "--socket", socket.string(), "--report",
                    daemonReport.string(), "--progress"},
                   dir.path / "client.log"),
            0)
      << readFile(dir.path / "client.log");
  stopDaemon(daemon, socket, dir.path);

  // Arm 3: N concurrent local shard processes over one shared cache,
  // merged through the CLI.
  const fs::path shardCache = dir.path / "cache_shards";
  std::vector<pid_t> children;
  std::vector<fs::path> shardReports;
  for (int i = 1; i <= kShards; ++i) {
    const fs::path report =
        dir.path / ("shard_" + std::to_string(i) + ".report");
    shardReports.push_back(report);
    children.push_back(spawnCli(
        {"batch", "--manifest", manifest.string(), "--shard",
         std::to_string(i) + "/" + std::to_string(kShards), "--cache-dir",
         shardCache.string(), "--report", report.string()},
        dir.path / ("shard_" + std::to_string(i) + ".log")));
  }
  for (pid_t child : children)
    EXPECT_EQ(waitFor(child), 0);
  const fs::path merged = dir.path / "merged.report";
  std::vector<std::string> mergeArgs = {"manifest", "merge", "--out",
                                        merged.string()};
  for (const fs::path &report : shardReports)
    mergeArgs.push_back(report.string());
  ASSERT_EQ(runCli(mergeArgs, dir.path / "merge.log"), 0);

  // All three arms agree byte-for-byte: reports and cache directories.
  const std::string reference = readFile(localReport);
  EXPECT_EQ(readFile(daemonReport), reference)
      << "daemon manifest-batch report differs from the local run";
  EXPECT_EQ(readFile(merged), reference)
      << "merged shard report differs from the local run";
  expectCachesIdentical(localCache, daemonCache);
  expectCachesIdentical(localCache, shardCache);
  expectCacheClean(daemonCache);

  // The client printed streamed progress and the report summary.
  const std::string clientLog = readFile(dir.path / "client.log");
  EXPECT_NE(clientLog.find("progress: "), std::string::npos) << clientLog;
  EXPECT_NE(clientLog.find("report: 6 entries"), std::string::npos)
      << clientLog;
}

TEST(FaultInjection, DaemonKilledMidBatchLeavesCleanCacheAndRerunsExactly) {
  constexpr int kSources = 6;
  TempDir dir("kill9");
  const fs::path corpus = dir.path / "corpus";
  writeCorpus(corpus, kSources);
  const fs::path manifest = dir.path / "corpus.manifest";
  ASSERT_EQ(runCli({"manifest", "build", corpus.string(), "--out",
                    manifest.string()},
                   dir.path / "build.log"),
            0);

  // The daemon SIGKILLs itself at the start of its 3rd analysis —
  // power-loss mid-batch with the single compute thread having fully
  // persisted the first two results.
  const fs::path cache = dir.path / "cache";
  const fs::path socket = dir.path / "daemon.sock";
  const pid_t daemon = startDaemon(socket, cache, dir.path / "daemon.log",
                                   "compute:crash:3");
  const int clientExit =
      runCli({"client", "batch", "--manifest", manifest.string(), "--socket",
              socket.string()},
             dir.path / "client_crash.log");
  waitFor(daemon);
  // The connection died mid-conversation: unified diagnostic, exit 4.
  EXPECT_EQ(clientExit, 4) << readFile(dir.path / "client_crash.log");
  EXPECT_NE(readFile(dir.path / "client_crash.log").find("mira-cli client: "),
            std::string::npos);

  // The partial cache: some but not all entries, every one valid.
  {
    CacheStore store(cache.string());
    const std::size_t partial = store.entryCount();
    EXPECT_GT(partial, 0u);
    EXPECT_LT(partial, static_cast<std::size_t>(kSources));
  }
  expectCacheClean(cache);

  // Reference for the rerun: a local run over a copy of the partial
  // cache — the warm/cold mix the restarted daemon must reproduce.
  const fs::path referenceCache = dir.path / "cache_reference";
  fs::copy(cache, referenceCache, fs::copy_options::recursive);
  const fs::path referenceReport = dir.path / "reference.report";
  ASSERT_EQ(runCli({"batch", "--manifest", manifest.string(), "--cache-dir",
                    referenceCache.string(), "--report",
                    referenceReport.string()},
                   dir.path / "reference.log"),
            0);

  // Restart (fresh socket; the SIGKILLed daemon never unlinked its old
  // one) and rerun: byte-identical report, converged identical caches.
  const fs::path socket2 = dir.path / "daemon2.sock";
  const pid_t daemon2 =
      startDaemon(socket2, cache, dir.path / "daemon2.log");
  const fs::path rerunReport = dir.path / "rerun.report";
  ASSERT_EQ(runCli({"client", "batch", "--manifest", manifest.string(),
                    "--socket", socket2.string(), "--report",
                    rerunReport.string()},
                   dir.path / "client_rerun.log"),
            0)
      << readFile(dir.path / "client_rerun.log");
  stopDaemon(daemon2, socket2, dir.path);

  EXPECT_EQ(readFile(rerunReport), readFile(referenceReport))
      << "restarted daemon's rerun differs from the local reference";
  const driver::BatchReport rerun = loadReport(rerunReport);
  EXPECT_EQ(rerun.stats.requests, static_cast<std::size_t>(kSources));
  EXPECT_EQ(rerun.stats.failures, 0u);
  EXPECT_GT(rerun.stats.cacheHits, 0u); // the pre-crash survivors
  expectCachesIdentical(cache, referenceCache);
  expectCacheClean(cache);
}

TEST(FaultInjection, ClientDisconnectMidBatchCancelsAndDaemonStaysHealthy) {
  constexpr int kSources = 4;
  TempDir dir("disconnect");
  const fs::path corpus = dir.path / "corpus";
  writeCorpus(corpus, kSources);
  const fs::path manifest = dir.path / "corpus.manifest";
  ASSERT_EQ(runCli({"manifest", "build", corpus.string(), "--out",
                    manifest.string()},
                   dir.path / "build.log"),
            0);

  // The daemon's first analysis stalls 3 seconds: a deterministic
  // window to SIGKILL the client while its batch is mid-flight.
  const fs::path cache = dir.path / "cache";
  const fs::path socket = dir.path / "daemon.sock";
  const pid_t daemon = startDaemon(socket, cache, dir.path / "daemon.log",
                                   "compute:stall:1:3000");
  const pid_t client =
      spawnCli({"client", "batch", "--manifest", manifest.string(),
                "--socket", socket.string()},
               dir.path / "client_killed.log");
  std::this_thread::sleep_for(std::chrono::milliseconds(700));
  ::kill(client, SIGKILL);
  EXPECT_EQ(waitFor(client), -1); // died on the signal, not an exit

  // The daemon notices the disconnect at the next chunk boundary,
  // abandons the batch, and counts the cancellation.
  bool cancelled = false;
  for (int i = 0; i < 100 && !cancelled; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    if (runCli({"client", "metrics", "--socket", socket.string()},
               dir.path / "metrics.log") != 0)
      continue;
    cancelled =
        readFile(dir.path / "metrics.log")
            .find("mira_server_manifest_batch_cancelled_total 1") !=
        std::string::npos;
  }
  EXPECT_TRUE(cancelled) << readFile(dir.path / "metrics.log");

  // Still healthy: the same manifest completes for the next client.
  const fs::path report = dir.path / "after.report";
  ASSERT_EQ(runCli({"client", "batch", "--manifest", manifest.string(),
                    "--socket", socket.string(), "--report",
                    report.string()},
                   dir.path / "client_after.log"),
            0)
      << readFile(dir.path / "client_after.log");
  const driver::BatchReport after = loadReport(report);
  EXPECT_EQ(after.stats.requests, static_cast<std::size_t>(kSources));
  EXPECT_EQ(after.stats.failures, 0u);
  stopDaemon(daemon, socket, dir.path);
  expectCacheClean(cache);
}

TEST(FaultInjection, CacheWriteFailuresDegradeToRecomputeIdentically) {
  constexpr int kSources = 5;
  TempDir dir("storefail");
  const fs::path corpus = dir.path / "corpus";
  writeCorpus(corpus, kSources);
  const fs::path manifest = dir.path / "corpus.manifest";
  ASSERT_EQ(runCli({"manifest", "build", corpus.string(), "--out",
                    manifest.string()},
                   dir.path / "build.log"),
            0);
  const std::string fault = "cache-write:fail:2+"; // 1st store lands,
                                                   // every later one fails

  // Faulted local run: analysis still succeeds everywhere.
  const fs::path localCache = dir.path / "cache_local";
  const fs::path localReport = dir.path / "local.report";
  ASSERT_EQ(runCli({"batch", "--manifest", manifest.string(), "--cache-dir",
                    localCache.string(), "--report", localReport.string()},
                   dir.path / "local.log", fault),
            0)
      << readFile(dir.path / "local.log");

  // Same fault inside the daemon: the degraded runs agree byte-for-byte
  // (same stores attempted, same single success, same report counters).
  const fs::path daemonCache = dir.path / "cache_daemon";
  const fs::path daemonReport = dir.path / "daemon.report";
  const fs::path socket = dir.path / "daemon.sock";
  const pid_t daemon = startDaemon(socket, daemonCache,
                                   dir.path / "daemon.log", fault);
  ASSERT_EQ(runCli({"client", "batch", "--manifest", manifest.string(),
                    "--socket", socket.string(), "--report",
                    daemonReport.string()},
                   dir.path / "client.log"),
            0)
      << readFile(dir.path / "client.log");
  stopDaemon(daemon, socket, dir.path);
  EXPECT_EQ(readFile(daemonReport), readFile(localReport))
      << "faulted daemon and faulted local reports differ";

  const driver::BatchReport report = loadReport(localReport);
  EXPECT_EQ(report.stats.requests, static_cast<std::size_t>(kSources));
  EXPECT_EQ(report.stats.failures, 0u); // degraded, not failed
  EXPECT_EQ(report.stats.diskStores, 1u);
  EXPECT_EQ(CacheStore(localCache.string()).entryCount(), 1u);
  expectCacheClean(localCache);

  // A clean rerun heals the cache to full occupancy.
  ASSERT_EQ(runCli({"batch", "--manifest", manifest.string(), "--cache-dir",
                    localCache.string()},
                   dir.path / "heal.log"),
            0);
  EXPECT_EQ(CacheStore(localCache.string()).entryCount(),
            static_cast<std::size_t>(kSources));
  expectCacheClean(localCache);
}

TEST(FaultInjection, ShardProcessCrashLeavesPartialCacheRerunConverges) {
  constexpr int kSources = 5;
  TempDir dir("crashshard");
  const fs::path corpus = dir.path / "corpus";
  writeCorpus(corpus, kSources);
  const fs::path manifest = dir.path / "corpus.manifest";
  ASSERT_EQ(runCli({"manifest", "build", corpus.string(), "--out",
                    manifest.string()},
                   dir.path / "build.log"),
            0);

  // Clean reference cache for the convergence check.
  const fs::path referenceCache = dir.path / "cache_reference";
  ASSERT_EQ(runCli({"batch", "--manifest", manifest.string(), "--cache-dir",
                    referenceCache.string()},
                   dir.path / "reference.log"),
            0);

  // A local batch that SIGKILLs itself at its 3rd compute (single
  // thread: exactly two entries persisted, then power loss).
  const fs::path cache = dir.path / "cache";
  const pid_t crashing =
      spawnCli({"batch", "--manifest", manifest.string(), "--threads", "1",
                "--cache-dir", cache.string()},
               dir.path / "crash.log", "compute:crash:3");
  EXPECT_EQ(waitFor(crashing), -1); // killed, not exited
  {
    CacheStore store(cache.string());
    EXPECT_EQ(store.entryCount(), 2u);
  }
  expectCacheClean(cache);

  // The rerun completes the corpus and converges on the reference
  // cache byte-for-byte.
  ASSERT_EQ(runCli({"batch", "--manifest", manifest.string(), "--cache-dir",
                    cache.string()},
                   dir.path / "rerun.log"),
            0);
  expectCachesIdentical(cache, referenceCache);
  expectCacheClean(cache);
}

TEST(FaultInjection, MalformedFaultSpecsAreIgnored) {
  TempDir dir("badspec");
  const fs::path corpus = dir.path / "corpus";
  writeCorpus(corpus, 2);
  const fs::path manifest = dir.path / "corpus.manifest";
  ASSERT_EQ(runCli({"manifest", "build", corpus.string(), "--out",
                    manifest.string()},
                   dir.path / "build.log"),
            0);
  // Junk clauses, unknown actions, and a zero ordinal must all be
  // skipped; the run behaves exactly as if unarmed.
  const fs::path cache = dir.path / "cache";
  ASSERT_EQ(runCli({"batch", "--manifest", manifest.string(), "--cache-dir",
                    cache.string()},
                   dir.path / "run.log",
                   "bogus,,cache-write:nope:1,cache-write:fail:0,:fail:1"),
            0)
      << readFile(dir.path / "run.log");
  EXPECT_EQ(CacheStore(cache.string()).entryCount(), 2u);
  expectCacheClean(cache);
}

} // namespace
} // namespace mira
