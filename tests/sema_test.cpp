#include <gtest/gtest.h>

#include "frontend/parser.h"
#include "sema/loop_analysis.h"
#include "sema/sema.h"

namespace mira::sema {
namespace {

using frontend::ExprKind;
using frontend::Parser;
using frontend::ScalarType;
using frontend::Statement;
using frontend::StmtKind;
using frontend::TranslationUnit;

struct Analyzed {
  std::unique_ptr<TranslationUnit> unit;
  SemaResult result;
  DiagnosticEngine diags;
};

Analyzed analyze(const std::string &src) {
  Analyzed out;
  out.unit = Parser::parse(src, "t.mc", out.diags);
  EXPECT_FALSE(out.diags.hasErrors()) << out.diags.str();
  SemanticAnalyzer sema(out.diags);
  out.result = sema.analyze(*out.unit);
  return out;
}

Analyzed analyzeOk(const std::string &src) {
  Analyzed out = analyze(src);
  EXPECT_TRUE(out.result.success) << out.diags.str();
  return out;
}

// ------------------------------------------------------------------- types

TEST(Sema, TypesPropagateThroughArithmetic) {
  auto a = analyzeOk("double f(int i, double d) { return i + d; }");
  const auto &ret = *a.unit->functions[0]->bodyStmt->body[0]->expr;
  EXPECT_EQ(ret.type.scalar, ScalarType::Double);
}

TEST(Sema, ComparisonYieldsBool) {
  auto a = analyzeOk("bool f(int i) { return i < 3; }");
  const auto &ret = *a.unit->functions[0]->bodyStmt->body[0]->expr;
  EXPECT_EQ(ret.type.scalar, ScalarType::Bool);
}

TEST(Sema, IndexingPeelsPointer) {
  auto a = analyzeOk("double f(double* p, int i) { return p[i]; }");
  const auto &ret = *a.unit->functions[0]->bodyStmt->body[0]->expr;
  EXPECT_EQ(ret.type.scalar, ScalarType::Double);
  EXPECT_FALSE(ret.type.isPointer());
}

TEST(Sema, LocalArrayDecaysToPointer) {
  auto a = analyzeOk("void f(int n) { double buf[n]; buf[0] = 1.0; }");
  (void)a;
}

TEST(Sema, UndeclaredIdentifierIsError) {
  auto a = analyze("void f() { x = 1; }");
  EXPECT_FALSE(a.result.success);
  EXPECT_TRUE(a.diags.containsMessage("undeclared identifier"));
}

TEST(Sema, RedeclarationIsError) {
  auto a = analyze("void f() { int x; double x; }");
  EXPECT_FALSE(a.result.success);
  EXPECT_TRUE(a.diags.containsMessage("redeclaration"));
}

TEST(Sema, ModuloOnFloatIsError) {
  auto a = analyze("double f(double d) { return d % 2.0; }");
  EXPECT_FALSE(a.result.success);
}

TEST(Sema, SubscriptOnScalarIsError) {
  auto a = analyze("void f(int i) { i[0] = 1; }");
  EXPECT_FALSE(a.result.success);
}

TEST(Sema, VoidReturnMismatch) {
  auto a = analyze("void f() { return 3; }");
  EXPECT_FALSE(a.result.success);
  auto b = analyze("int f() { return; }");
  EXPECT_FALSE(b.result.success);
}

// -------------------------------------------------------------- resolution

TEST(Sema, ResolvesFreeCall) {
  auto a = analyzeOk("int g(int x) { return x; }\n"
                     "int f() { return g(3); }");
  const auto &call = *a.unit->findFunction("f")->bodyStmt->body[0]->expr;
  EXPECT_EQ(call.resolvedCallee, "g");
  EXPECT_FALSE(call.isExtern);
}

TEST(Sema, ResolvesMethodCall) {
  auto a = analyzeOk("class A { public: int m(int x) { return x; } };\n"
                     "int f() { A a; return a.m(1); }");
  const auto &ret = *a.unit->findFunction("f")->bodyStmt->body[1]->expr;
  EXPECT_EQ(ret.resolvedCallee, "A::m");
}

TEST(Sema, RewritesObjectCallToOperator) {
  auto a = analyzeOk(
      "class M { public: double operator()(double x) { return x; } };\n"
      "double f() { M m; return m(2.0); }");
  const auto &ret = *a.unit->findFunction("f")->bodyStmt->body[1]->expr;
  EXPECT_EQ(ret.kind, ExprKind::Call);
  EXPECT_EQ(ret.resolvedCallee, "M::operator()");
  ASSERT_NE(ret.receiver, nullptr);
}

TEST(Sema, BuiltinsAndExternalsClassified) {
  auto a = analyzeOk("double f(double x) {\n"
                     "  double s = sqrt(x);\n"
                     "  mc_print(s);\n"
                     "  return s;\n"
                     "}");
  const auto &decl = *a.unit->findFunction("f")->bodyStmt->body[0];
  EXPECT_TRUE(decl.declInit->isBuiltin);
  const auto &print = *a.unit->findFunction("f")->bodyStmt->body[1]->expr;
  EXPECT_TRUE(print.isExtern);
}

TEST(Sema, UnknownCalleeIsError) {
  auto a = analyze("void f() { launch_rockets(); }");
  EXPECT_FALSE(a.result.success);
  EXPECT_TRUE(a.diags.containsMessage("undeclared function"));
}

TEST(Sema, ArityMismatchIsError) {
  auto a = analyze("int g(int x) { return x; } void f() { g(1, 2); }");
  EXPECT_FALSE(a.result.success);
}

TEST(Sema, MissingMethodIsError) {
  auto a = analyze("class A { public: int n; };\n"
                   "void f() { A a; a.nope(); }");
  EXPECT_FALSE(a.result.success);
}

TEST(Sema, FieldAccessFromMethodScope) {
  auto a = analyzeOk("class A { public: int n;\n"
                     "  int get() { return n; } };");
  (void)a;
}

TEST(Sema, FieldAccessThroughMember) {
  auto a = analyzeOk("class A { public: int n; };\n"
                     "int f() { A a; return a.n; }");
  (void)a;
}

TEST(Sema, UnknownFieldIsError) {
  auto a = analyze("class A { public: int n; };\n"
                   "int f() { A a; return a.m; }");
  EXPECT_FALSE(a.result.success);
}

// -------------------------------------------------------------- call graph

TEST(Sema, CallGraphEdges) {
  auto a = analyzeOk("int leaf(int x) { return x; }\n"
                     "int mid(int x) { return leaf(x); }\n"
                     "int top(int x) { return mid(x) + leaf(x); }");
  const auto &edges = a.result.callGraph.edges;
  EXPECT_TRUE(edges.at("top").count("mid"));
  EXPECT_TRUE(edges.at("top").count("leaf"));
  EXPECT_TRUE(edges.at("mid").count("leaf"));
  EXPECT_TRUE(edges.at("leaf").empty());
}

TEST(Sema, TopologicalOrderPutsCalleesFirst) {
  auto a = analyzeOk("int leaf(int x) { return x; }\n"
                     "int mid(int x) { return leaf(x); }\n"
                     "int top(int x) { return mid(x); }");
  bool hasCycle = true;
  auto order = a.result.callGraph.topologicalOrder(hasCycle);
  EXPECT_FALSE(hasCycle);
  auto pos = [&](const std::string &n) {
    return std::find(order.begin(), order.end(), n) - order.begin();
  };
  EXPECT_LT(pos("leaf"), pos("mid"));
  EXPECT_LT(pos("mid"), pos("top"));
}

TEST(Sema, RecursionIsDiagnosed) {
  auto a = analyze("int f(int x) { return f(x - 1); }");
  EXPECT_FALSE(a.result.success);
  EXPECT_TRUE(a.diags.containsMessage("recursive"));
}

// ------------------------------------------------------------ loop analysis

const Statement &firstLoop(const TranslationUnit &unit,
                           const std::string &fn = "f") {
  const auto *decl = unit.findFunction(fn);
  EXPECT_NE(decl, nullptr);
  for (const auto &s : decl->bodyStmt->body)
    if (s->kind == StmtKind::For)
      return *s;
  throw std::runtime_error("no loop in function");
}

TEST(LoopAnalysis, BasicLoopListing1) {
  auto a = analyzeOk("void f() { for (int i = 0; i < 10; i++) { } }");
  LoopInfo info = analyzeForLoop(firstLoop(*a.unit));
  ASSERT_TRUE(info.recognized) << info.failReason;
  EXPECT_EQ(info.var, "i");
  EXPECT_EQ(info.lowerBound.constant(), 0);
  EXPECT_EQ(info.upperBound.constant(), 9); // i < 10 normalized to <= 9
  EXPECT_EQ(info.step, 1);
}

TEST(LoopAnalysis, ParametricBound) {
  auto a = analyzeOk("void f(int n) { for (int i = 0; i < n; i++) { } }");
  LoopInfo info = analyzeForLoop(firstLoop(*a.unit));
  ASSERT_TRUE(info.recognized);
  EXPECT_EQ(info.upperBound.coeff("n"), 1);
  EXPECT_EQ(info.upperBound.constant(), -1);
}

TEST(LoopAnalysis, AssignInitForm) {
  auto a = analyzeOk("void f(int n) { int i;\n"
                     "  for (i = 1; i <= n; i = i + 2) { } }");
  LoopInfo info = analyzeForLoop(firstLoop(*a.unit));
  ASSERT_TRUE(info.recognized) << info.failReason;
  EXPECT_EQ(info.step, 2);
  EXPECT_EQ(info.lowerBound.constant(), 1);
}

TEST(LoopAnalysis, PlusAssignStep) {
  auto a = analyzeOk("void f(int n) { for (int i = 0; i < n; i += 4) { } }");
  LoopInfo info = analyzeForLoop(firstLoop(*a.unit));
  ASSERT_TRUE(info.recognized);
  EXPECT_EQ(info.step, 4);
}

TEST(LoopAnalysis, TriangularBoundDependsOnOuterVar) {
  auto a = analyzeOk("void f() {\n"
                     "  for (int i = 1; i <= 4; i++)\n"
                     "    for (int j = i + 1; j <= 6; j++) { }\n"
                     "}");
  const Statement &outer = firstLoop(*a.unit);
  LoopInfo inner = analyzeForLoop(*outer.loopBody);
  ASSERT_TRUE(inner.recognized);
  EXPECT_EQ(inner.lowerBound.coeff("i"), 1);
  EXPECT_EQ(inner.lowerBound.constant(), 1);
}

TEST(LoopAnalysis, NonAffineBoundFails) {
  auto a = analyzeOk("void f(int n, int* v) {\n"
                     "  for (int i = v[0]; i < n; i++) { }\n"
                     "}");
  LoopInfo info = analyzeForLoop(firstLoop(*a.unit));
  EXPECT_FALSE(info.recognized);
  EXPECT_NE(info.failReason.find("not affine"), std::string::npos);
}

TEST(LoopAnalysis, MinMaxBoundFailsLikePaperListing3) {
  auto a = analyzeOk("void f(int n) {\n"
                     "  for (int j = min(6 - n, 3); j <= n; j++) { }\n"
                     "}");
  LoopInfo info = analyzeForLoop(firstLoop(*a.unit));
  EXPECT_FALSE(info.recognized);
}

TEST(LoopAnalysis, DecrementLoopNotRecognized) {
  auto a = analyzeOk("void f(int n) { for (int i = n; i > 0; i--) { } }");
  LoopInfo info = analyzeForLoop(firstLoop(*a.unit));
  EXPECT_FALSE(info.recognized);
}

TEST(LoopAnalysis, ReversedConditionNormalized) {
  auto a = analyzeOk("void f(int n) { for (int i = 0; n > i; i++) { } }");
  LoopInfo info = analyzeForLoop(firstLoop(*a.unit));
  ASSERT_TRUE(info.recognized) << info.failReason;
  EXPECT_EQ(info.upperBound.coeff("n"), 1);
  EXPECT_EQ(info.upperBound.constant(), -1);
}

TEST(ExprToAffine, HandlesScaledSums) {
  auto a = analyzeOk("void f(int n, int m) {\n"
                     "  for (int i = 2 * n + 3 * m - 1; i < n; i++) { }\n"
                     "}");
  LoopInfo info = analyzeForLoop(firstLoop(*a.unit));
  ASSERT_TRUE(info.recognized);
  EXPECT_EQ(info.lowerBound.coeff("n"), 2);
  EXPECT_EQ(info.lowerBound.coeff("m"), 3);
  EXPECT_EQ(info.lowerBound.constant(), -1);
}

TEST(ExprToAffine, RejectsNonLinear) {
  auto a = analyzeOk("void f(int n) { for (int i = n * n; i < n; i++) { } }");
  LoopInfo info = analyzeForLoop(firstLoop(*a.unit));
  EXPECT_FALSE(info.recognized);
}

} // namespace
} // namespace mira::sema
