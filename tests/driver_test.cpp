// Batch-driver subsystem tests: FNV-1a hashing, the thread pool, cache
// keying, and the headline invariants — batch results are byte-identical
// to serial runs regardless of thread count, and the analysis cache
// de-duplicates repeated (source, options) pairs.
#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "driver/batch.h"
#include "model/python_emitter.h"
#include "support/hash.h"
#include "support/thread_pool.h"
#include "workloads/coverage_suite.h"
#include "workloads/workloads.h"

namespace mira::driver {
namespace {

/// One-shot model analysis through the v2 artifact API, returned in the
/// v1 result shape these tests consume (null on failure).
std::shared_ptr<const core::AnalysisResult>
analyzeModel(const std::string &source, const std::string &name,
             const core::MiraOptions &options, DiagnosticEngine &diags) {
  core::AnalysisSpec spec;
  spec.name = name;
  spec.source = source;
  spec.options = options;
  spec.artifacts = core::kArtifactModel | core::kArtifactDiagnostics;
  core::Artifacts artifacts = core::analyze(spec, diags);
  return artifacts.ok ? artifacts.resultV1 : nullptr;
}

// ------------------------------------------------------------------ hash

TEST(Hash, Fnv1aReferenceVectors) {
  // Published FNV-1a 64-bit test vectors.
  EXPECT_EQ(fnv1a(std::string()), 0xcbf29ce484222325ull);
  EXPECT_EQ(fnv1a(std::string("a")), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(fnv1a(std::string("foobar")), 0x85944171f73967e8ull);
}

TEST(Hash, CombineIsOrderSensitive) {
  std::uint64_t a = fnv1a(std::string("alpha"));
  std::uint64_t b = fnv1a(std::string("beta"));
  EXPECT_NE(hashCombine(a, b), hashCombine(b, a));
  EXPECT_NE(hashCombine(a, b), a);
}

// ----------------------------------------------------------- thread pool

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 100; ++i)
      pool.submit([&counter] { ++counter; });
    pool.waitIdle();
    EXPECT_EQ(counter.load(), 100);
  }
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i)
      pool.submit([&counter] { ++counter; });
  } // ~ThreadPool must run everything before joining
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, TasksMaySubmitFollowUpTasks) {
  std::atomic<int> counter{0};
  ThreadPool pool(2);
  pool.submit([&] {
    ++counter;
    pool.submit([&] { ++counter; });
  });
  pool.waitIdle();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPoolTest, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.threadCount(), 1u);
}

// ------------------------------------------------------------- cache key

AnalysisRequest makeRequest(const std::string &source,
                            const std::string &name = "test.mc") {
  AnalysisRequest request;
  request.name = name;
  request.source = source;
  return request;
}

TEST(RequestKey, DependsOnSourceAndOptionsButNotName) {
  AnalysisRequest a = makeRequest("int f() { return 1; }", "a.mc");
  AnalysisRequest b = makeRequest("int f() { return 1; }", "b.mc");
  EXPECT_EQ(requestKey(a), requestKey(b)); // name is display-only

  AnalysisRequest other = makeRequest("int f() { return 2; }");
  EXPECT_NE(requestKey(a), requestKey(other));

  AnalysisRequest noOpt = a;
  noOpt.options.compile.compiler.optimize = false;
  AnalysisRequest noVec = a;
  noVec.options.compile.compiler.vectorize = false;
  AnalysisRequest noBranch = a;
  noBranch.options.metrics.assumeBranchesTaken = false;
  std::set<std::uint64_t> keys{requestKey(a), requestKey(noOpt),
                               requestKey(noVec), requestKey(noBranch)};
  EXPECT_EQ(keys.size(), 4u); // every option perturbs the key
}

TEST(RequestKey, IgnoresExecutionStrategy) {
  // The model pool changes only HOW the model is computed; keying on it
  // would make the on-disk cache miss across equivalent configurations.
  AnalysisRequest plain = makeRequest("int f() { return 1; }");
  AnalysisRequest pooled = plain;
  ThreadPool pool(2);
  pooled.options.modelPool = &pool;
  EXPECT_EQ(requestKey(plain), requestKey(pooled));
}

TEST(RequestKey, IsStableAcrossRuns) {
  // The key is the on-disk cache file name: it must be a pure function
  // of (source, options), reproducible in any process on any day. A
  // golden value pins that; if this test breaks, kCacheSchemaVersion
  // must be bumped because every existing cache is invalidated.
  AnalysisRequest request = makeRequest("int f() { return 1; }");
  EXPECT_EQ(requestKey(request), 0x03406ef14ab139eeull);
}

// ------------------------------------------------------------ batch runs

std::vector<AnalysisRequest> coverageRequests() {
  std::vector<AnalysisRequest> requests;
  for (const auto &kernel : workloads::coverageSuite())
    requests.push_back(makeRequest(kernel.source, kernel.name));
  return requests;
}

/// Canonical byte rendering of a batch: names, status, diagnostics, and
/// the emitted Python of every model, in input order.
std::string fingerprint(const std::vector<AnalysisOutcome> &outcomes) {
  std::string bytes;
  for (const auto &outcome : outcomes) {
    bytes += outcome.name;
    bytes += outcome.ok ? "|ok|" : "|fail|";
    bytes += outcome.diagnostics;
    if (outcome.analysis)
      bytes += model::emitPython(outcome.analysis->model);
    bytes += '\n';
  }
  return bytes;
}

TEST(BatchAnalyzerTest, ParallelResultsAreByteIdenticalToSerial) {
  auto requests = coverageRequests();
  BatchOptions serialOptions;
  serialOptions.threads = 1;
  BatchAnalyzer serial(serialOptions);
  std::string reference = fingerprint(serial.run(requests));
  ASSERT_FALSE(reference.empty());
  EXPECT_EQ(serial.stats().failures, 0u);

  for (std::size_t threads : {2u, 8u}) {
    BatchOptions options;
    options.threads = threads;
    BatchAnalyzer analyzer(options);
    EXPECT_EQ(fingerprint(analyzer.run(requests)), reference)
        << "non-deterministic batch at " << threads << " threads";
  }
}

TEST(BatchAnalyzerTest, ParallelModelGenerationIsByteIdentical) {
  // Within-request parallelism: per-function model generation fans out
  // across a model pool, and the merged model (counts, calls, notes,
  // diagnostics — everything emitPython renders) must match the serial
  // walk exactly at every thread count.
  auto requests = coverageRequests();
  BatchOptions serialOptions;
  serialOptions.threads = 1;
  serialOptions.modelThreads = 1;
  BatchAnalyzer serial(serialOptions);
  std::string reference = fingerprint(serial.run(requests));
  ASSERT_FALSE(reference.empty());

  for (std::size_t modelThreads : {2u, 8u}) {
    BatchOptions options;
    options.threads = 2;
    options.modelThreads = modelThreads;
    BatchAnalyzer analyzer(options);
    EXPECT_EQ(fingerprint(analyzer.run(requests)), reference)
        << "non-deterministic model generation at " << modelThreads
        << " model threads";
  }
}

TEST(MetricGeneratorTest, PoolAndSerialModelsAgreeIncludingDiagnostics) {
  // Direct generateModel-level check (below the batch layer): a shared
  // pool with per-function diagnostic merge reproduces the serial
  // diagnostics byte for byte. listings exercises annotation warnings.
  const std::string &source = workloads::listingsSource();
  core::MiraOptions options;

  DiagnosticEngine serialDiags;
  auto serial = analyzeModel(source, "listings.mc", options, serialDiags);
  ASSERT_TRUE(serial != nullptr) << serialDiags.str();

  for (std::size_t threads : {2u, 8u}) {
    ThreadPool pool(threads);
    core::MiraOptions pooled = options;
    pooled.modelPool = &pool;
    DiagnosticEngine poolDiags;
    auto parallel = analyzeModel(source, "listings.mc", pooled, poolDiags);
    ASSERT_TRUE(parallel != nullptr) << poolDiags.str();
    EXPECT_EQ(model::emitPython(parallel->model),
              model::emitPython(serial->model));
    EXPECT_EQ(poolDiags.str(), serialDiags.str());
  }
}

TEST(BatchAnalyzerTest, OutcomesKeepInputOrder) {
  std::vector<AnalysisRequest> requests;
  requests.push_back(makeRequest(workloads::dgemmSource(), "first"));
  requests.push_back(makeRequest("int broken(", "second"));
  requests.push_back(makeRequest(workloads::fig5Source(), "third"));

  BatchOptions options;
  options.threads = 4;
  BatchAnalyzer analyzer(options);
  auto outcomes = analyzer.run(requests);
  ASSERT_EQ(outcomes.size(), 3u);
  EXPECT_EQ(outcomes[0].name, "first");
  EXPECT_EQ(outcomes[1].name, "second");
  EXPECT_EQ(outcomes[2].name, "third");
  EXPECT_TRUE(outcomes[0].ok);
  EXPECT_FALSE(outcomes[1].ok);
  EXPECT_TRUE(outcomes[2].ok);
  EXPECT_EQ(analyzer.stats().failures, 1u);
}

TEST(BatchAnalyzerTest, MalformedSourceYieldsDiagnosticsNotCrash) {
  BatchAnalyzer analyzer(BatchOptions{2, true});
  auto outcomes = analyzer.run({makeRequest("void f( {", "bad.mc")});
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_FALSE(outcomes[0].ok);
  EXPECT_EQ(outcomes[0].analysis, nullptr);
  EXPECT_FALSE(outcomes[0].diagnostics.empty());
}

TEST(BatchAnalyzerTest, CachedDiagnosticsNameTheirProducer) {
  // Identical broken sources under different names share one cache
  // entry; the hit's diagnostics must say which request produced them
  // instead of silently citing the wrong file.
  BatchAnalyzer analyzer(BatchOptions{1, true});
  auto outcomes = analyzer.run(
      {makeRequest("int broken(", "a.mc"), makeRequest("int broken(", "b.mc")});
  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_FALSE(outcomes[0].ok);
  EXPECT_FALSE(outcomes[1].ok);
  EXPECT_TRUE(outcomes[1].cacheHit);
  EXPECT_NE(outcomes[1].diagnostics.find("identical source 'a.mc'"),
            std::string::npos)
      << outcomes[1].diagnostics;
}

TEST(BatchAnalyzerTest, DuplicateRequestsShareOneAnalysis) {
  AnalysisRequest request = makeRequest(workloads::fig5Source(), "fig5");
  std::vector<AnalysisRequest> requests{request, request, request};

  BatchOptions options;
  options.threads = 4;
  BatchAnalyzer analyzer(options);
  auto outcomes = analyzer.run(requests);
  ASSERT_EQ(outcomes.size(), 3u);
  EXPECT_EQ(analyzer.stats().cacheMisses, 1u);
  EXPECT_EQ(analyzer.stats().cacheHits, 2u);
  EXPECT_EQ(analyzer.cacheSize(), 1u);
  // All three positions share the one cached analysis object.
  EXPECT_EQ(outcomes[0].analysis, outcomes[1].analysis);
  EXPECT_EQ(outcomes[1].analysis, outcomes[2].analysis);
}

TEST(BatchAnalyzerTest, CachePersistsAcrossRuns) {
  auto requests = coverageRequests();
  BatchOptions options;
  options.threads = 2;
  BatchAnalyzer analyzer(options);

  analyzer.run(requests);
  EXPECT_EQ(analyzer.stats().cacheMisses, requests.size());
  EXPECT_EQ(analyzer.stats().cacheHits, 0u);

  analyzer.run(requests); // identical (source, options) pairs: all hits
  EXPECT_EQ(analyzer.stats().cacheMisses, 0u);
  EXPECT_EQ(analyzer.stats().cacheHits, requests.size());

  analyzer.clearCache();
  analyzer.run(requests);
  EXPECT_EQ(analyzer.stats().cacheMisses, requests.size());
}

TEST(BatchAnalyzerTest, DifferentOptionsDoNotShareCacheEntries) {
  AnalysisRequest optimized = makeRequest(workloads::fig5Source());
  AnalysisRequest unoptimized = optimized;
  unoptimized.options.compile.compiler.optimize = false;

  BatchAnalyzer analyzer(BatchOptions{2, true});
  auto outcomes = analyzer.run({optimized, unoptimized});
  EXPECT_EQ(analyzer.stats().cacheMisses, 2u);
  EXPECT_EQ(analyzer.stats().cacheHits, 0u);
  ASSERT_TRUE(outcomes[0].ok);
  ASSERT_TRUE(outcomes[1].ok);
  EXPECT_NE(outcomes[0].analysis, outcomes[1].analysis);
}

TEST(BatchAnalyzerTest, CacheCanBeDisabled) {
  AnalysisRequest request = makeRequest(workloads::fig5Source());
  BatchOptions options;
  options.threads = 2;
  options.useCache = false;
  BatchAnalyzer analyzer(options);
  auto outcomes = analyzer.run({request, request});
  EXPECT_EQ(analyzer.stats().cacheHits, 0u);
  EXPECT_EQ(analyzer.stats().cacheMisses, 0u);
  EXPECT_EQ(analyzer.cacheSize(), 0u);
  ASSERT_TRUE(outcomes[0].ok);
  ASSERT_TRUE(outcomes[1].ok);
  EXPECT_NE(outcomes[0].analysis, outcomes[1].analysis); // recomputed
}

TEST(BatchAnalyzerTest, CachedModelStillEvaluates) {
  // A cached AnalysisResult is shared const; evaluating it must work and
  // agree with a fresh serial analysis (paper FPI on the Fig. 5 model).
  BatchAnalyzer analyzer(BatchOptions{4, true});
  auto first = analyzer.run({makeRequest(workloads::fig5Source())});
  auto second = analyzer.run({makeRequest(workloads::fig5Source())});
  ASSERT_TRUE(first[0].ok);
  ASSERT_TRUE(second[0].ok);
  EXPECT_TRUE(second[0].cacheHit);

  DiagnosticEngine diags;
  core::MiraOptions options;
  auto serial = analyzeModel(workloads::fig5Source(), "fig5.mc", options,
                             diags);
  ASSERT_TRUE(serial != nullptr) << diags.str();

  model::Env env{{"total", 8}, {"y", 16}};
  auto cached = second[0].analysis->model.evaluate("fig5_main", env);
  auto fresh = serial->model.evaluate("fig5_main", env);
  ASSERT_TRUE(cached.has_value());
  ASSERT_TRUE(fresh.has_value());
  EXPECT_EQ(cached->fpInstructions, fresh->fpInstructions);
  EXPECT_EQ(cached->totalInstructions, fresh->totalInstructions);
}

} // namespace
} // namespace mira::driver
