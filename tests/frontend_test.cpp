#include <gtest/gtest.h>

#include "frontend/lexer.h"
#include "frontend/parser.h"

namespace mira::frontend {
namespace {

std::vector<Token> lex(const std::string &src, DiagnosticEngine &diags) {
  Lexer lexer(src, diags);
  return lexer.tokenize();
}

std::unique_ptr<TranslationUnit> parseOk(const std::string &src) {
  DiagnosticEngine diags;
  auto unit = Parser::parse(src, "test.mc", diags);
  EXPECT_FALSE(diags.hasErrors()) << diags.str();
  return unit;
}

// ------------------------------------------------------------------- lexer

TEST(Lexer, BasicTokens) {
  DiagnosticEngine diags;
  auto toks = lex("int x = 42;", diags);
  ASSERT_EQ(toks.size(), 6u); // int x = 42 ; EOF
  EXPECT_EQ(toks[0].kind, TokenKind::KwInt);
  EXPECT_EQ(toks[1].kind, TokenKind::Identifier);
  EXPECT_EQ(toks[1].text, "x");
  EXPECT_EQ(toks[2].kind, TokenKind::Assign);
  EXPECT_EQ(toks[3].kind, TokenKind::IntLiteral);
  EXPECT_EQ(toks[3].intValue, 42);
  EXPECT_EQ(toks[4].kind, TokenKind::Semicolon);
  EXPECT_EQ(toks[5].kind, TokenKind::Eof);
}

TEST(Lexer, LineAndColumnTracking) {
  DiagnosticEngine diags;
  auto toks = lex("int\n  x;", diags);
  EXPECT_EQ(toks[0].location.line, 1u);
  EXPECT_EQ(toks[1].location.line, 2u);
  EXPECT_EQ(toks[1].location.column, 3u);
}

TEST(Lexer, FloatLiterals) {
  DiagnosticEngine diags;
  auto toks = lex("3.5 1e6 2.5e-3 7", diags);
  EXPECT_EQ(toks[0].kind, TokenKind::FloatLiteral);
  EXPECT_DOUBLE_EQ(toks[0].floatValue, 3.5);
  EXPECT_EQ(toks[1].kind, TokenKind::FloatLiteral);
  EXPECT_DOUBLE_EQ(toks[1].floatValue, 1e6);
  EXPECT_EQ(toks[2].kind, TokenKind::FloatLiteral);
  EXPECT_DOUBLE_EQ(toks[2].floatValue, 2.5e-3);
  EXPECT_EQ(toks[3].kind, TokenKind::IntLiteral);
}

TEST(Lexer, CompoundOperators) {
  DiagnosticEngine diags;
  auto toks = lex("++ -- += -= *= /= <= >= == != && || ->", diags);
  TokenKind expected[] = {
      TokenKind::PlusPlus,   TokenKind::MinusMinus,   TokenKind::PlusAssign,
      TokenKind::MinusAssign, TokenKind::StarAssign,  TokenKind::SlashAssign,
      TokenKind::LessEqual,  TokenKind::GreaterEqual, TokenKind::EqualEqual,
      TokenKind::NotEqual,   TokenKind::AmpAmp,       TokenKind::PipePipe,
      TokenKind::Arrow};
  for (std::size_t i = 0; i < std::size(expected); ++i)
    EXPECT_EQ(toks[i].kind, expected[i]) << i;
}

TEST(Lexer, Comments) {
  DiagnosticEngine diags;
  auto toks = lex("a // line comment\n/* block\ncomment */ b", diags);
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[0].text, "a");
  EXPECT_EQ(toks[1].text, "b");
  EXPECT_EQ(toks[1].location.line, 3u);
}

TEST(Lexer, UnterminatedBlockCommentDiagnosed) {
  DiagnosticEngine diags;
  lex("a /* never closed", diags);
  EXPECT_TRUE(diags.hasErrors());
  EXPECT_TRUE(diags.containsMessage("unterminated"));
}

TEST(Lexer, PragmaCapturedAsOneToken) {
  DiagnosticEngine diags;
  auto toks = lex("#pragma @Annotation {skip:yes}\nx;", diags);
  EXPECT_EQ(toks[0].kind, TokenKind::Pragma);
  EXPECT_NE(toks[0].text.find("@Annotation"), std::string::npos);
  EXPECT_EQ(toks[1].kind, TokenKind::Identifier);
}

TEST(Lexer, PragmaBackslashContinuation) {
  DiagnosticEngine diags;
  auto toks = lex("#pragma @Annotation \\\n{lp_init:x,lp_cond:y}\nz;", diags);
  EXPECT_EQ(toks[0].kind, TokenKind::Pragma);
  EXPECT_NE(toks[0].text.find("lp_cond:y"), std::string::npos);
}

TEST(Lexer, UnexpectedCharacterDiagnosed) {
  DiagnosticEngine diags;
  lex("a $ b", diags);
  EXPECT_TRUE(diags.hasErrors());
}

// ------------------------------------------------------------------ parser

TEST(Parser, SimpleFunction) {
  auto unit = parseOk("int add(int a, int b) { return a + b; }");
  ASSERT_EQ(unit->functions.size(), 1u);
  const FunctionDecl &fn = *unit->functions[0];
  EXPECT_EQ(fn.name, "add");
  EXPECT_EQ(fn.params.size(), 2u);
  EXPECT_EQ(fn.returnType.scalar, ScalarType::Int);
  ASSERT_EQ(fn.bodyStmt->body.size(), 1u);
  EXPECT_EQ(fn.bodyStmt->body[0]->kind, StmtKind::Return);
}

TEST(Parser, PointerParams) {
  auto unit = parseOk("void f(double* a, double** b) { }");
  const FunctionDecl &fn = *unit->functions[0];
  EXPECT_EQ(fn.params[0].type.pointerDepth, 1);
  EXPECT_EQ(fn.params[1].type.pointerDepth, 2);
  EXPECT_EQ(fn.params[0].type.scalar, ScalarType::Double);
}

TEST(Parser, ForLoopStructure) {
  auto unit = parseOk(
      "void f(int n) { for (int i = 0; i < n; i++) { n = n; } }");
  const Statement &body = *unit->functions[0]->bodyStmt;
  ASSERT_EQ(body.body.size(), 1u);
  const Statement &loop = *body.body[0];
  EXPECT_EQ(loop.kind, StmtKind::For);
  ASSERT_NE(loop.forInit, nullptr);
  EXPECT_EQ(loop.forInit->kind, StmtKind::Decl);
  EXPECT_EQ(loop.forInit->declName, "i");
  ASSERT_NE(loop.forCond, nullptr);
  EXPECT_EQ(loop.forCond->kind, ExprKind::Binary);
  ASSERT_NE(loop.forInc, nullptr);
  ASSERT_NE(loop.loopBody, nullptr);
}

TEST(Parser, NestedLoopPaperListing2) {
  auto unit = parseOk("void f() {\n"
                      "  for (int i = 1; i <= 4; i++)\n"
                      "    for (int j = i + 1; j <= 6; j++) {\n"
                      "      int s = 0;\n"
                      "    }\n"
                      "}");
  const Statement &outer = *unit->functions[0]->bodyStmt->body[0];
  EXPECT_EQ(outer.kind, StmtKind::For);
  EXPECT_EQ(outer.loopBody->kind, StmtKind::For);
}

TEST(Parser, ArrayDeclaration) {
  auto unit = parseOk("void f(int n) { double a[n]; double b[10]; }");
  const Statement &body = *unit->functions[0]->bodyStmt;
  EXPECT_EQ(body.body[0]->kind, StmtKind::Decl);
  ASSERT_EQ(body.body[0]->arrayDims.size(), 1u);
  EXPECT_EQ(body.body[0]->arrayDims[0]->kind, ExprKind::VarRef);
  EXPECT_EQ(body.body[1]->arrayDims[0]->kind, ExprKind::IntLiteral);
}

TEST(Parser, OperatorPrecedence) {
  auto unit = parseOk("int f() { return 1 + 2 * 3; }");
  const Expression &ret = *unit->functions[0]->bodyStmt->body[0]->expr;
  // (1 + (2 * 3))
  EXPECT_EQ(ret.binaryOp, BinaryOp::Add);
  EXPECT_EQ(ret.children[1]->binaryOp, BinaryOp::Mul);
}

TEST(Parser, AssignmentIsRightAssociative) {
  auto unit = parseOk("void f(int a, int b) { a = b = 3; }");
  const Expression &e = *unit->functions[0]->bodyStmt->body[0]->expr;
  EXPECT_EQ(e.kind, ExprKind::Assign);
  EXPECT_EQ(e.children[1]->kind, ExprKind::Assign);
}

TEST(Parser, ClassWithMethodAndFields) {
  auto unit = parseOk("class A {\n"
                      "public:\n"
                      "  int n;\n"
                      "  double* data;\n"
                      "  void foo(double* x, double* y) { n = n; }\n"
                      "};\n");
  ASSERT_EQ(unit->classes.size(), 1u);
  const ClassDecl &cls = *unit->classes[0];
  EXPECT_EQ(cls.name, "A");
  ASSERT_EQ(cls.fields.size(), 2u);
  EXPECT_EQ(cls.fields[1].type.pointerDepth, 1);
  ASSERT_EQ(cls.methods.size(), 1u);
  EXPECT_EQ(cls.methods[0]->qualifiedName(), "A::foo");
  EXPECT_EQ(cls.methods[0]->modelName(), "A_foo_2");
}

TEST(Parser, OperatorCallMethod) {
  auto unit = parseOk("class M {\n"
                      "public:\n"
                      "  void operator()(int i) { i = i; }\n"
                      "};\n"
                      "void g() { M m; m(3); }\n");
  ASSERT_EQ(unit->classes[0]->methods.size(), 1u);
  EXPECT_EQ(unit->classes[0]->methods[0]->name, "operator()");
  EXPECT_EQ(unit->classes[0]->methods[0]->modelName(), "M_operator_call_1");
}

TEST(Parser, MethodCallSyntax) {
  auto unit = parseOk("class A { public: void foo(int i) { i = i; } };\n"
                      "void g() { A a; a.foo(1); }\n");
  const Statement &body = *unit->functions[0]->bodyStmt;
  const Expression &call = *body.body[1]->expr;
  EXPECT_EQ(call.kind, ExprKind::Call);
  EXPECT_EQ(call.name, "foo");
  ASSERT_NE(call.receiver, nullptr);
  EXPECT_EQ(call.receiver->kind, ExprKind::VarRef);
}

TEST(Parser, AnnotationAttachesToNextStatement) {
  auto unit = parseOk("void f(int n) {\n"
                      "  #pragma @Annotation {lp_iters:100}\n"
                      "  for (int i = 0; i < n; i++) { n = n; }\n"
                      "}");
  const Statement &loop = *unit->functions[0]->bodyStmt->body[0];
  ASSERT_TRUE(loop.annotation.has_value());
  EXPECT_EQ(loop.annotation->get("lp_iters"), "100");
}

TEST(Parser, AnnotationSkipAndMultiKey) {
  auto unit = parseOk("void f(int n) {\n"
                      "  #pragma @Annotation {lp_init:x, lp_cond:y}\n"
                      "  for (int i = 0; i < n; i++) { n = n; }\n"
                      "  #pragma @Annotation {skip:yes}\n"
                      "  n = n + 1;\n"
                      "}");
  const auto &stmts = unit->functions[0]->bodyStmt->body;
  ASSERT_TRUE(stmts[0]->annotation.has_value());
  EXPECT_EQ(stmts[0]->annotation->get("lp_init"), "x");
  EXPECT_EQ(stmts[0]->annotation->get("lp_cond"), "y");
  ASSERT_TRUE(stmts[1]->annotation.has_value());
  EXPECT_TRUE(stmts[1]->annotation->skip());
}

TEST(Parser, MalformedAnnotationDiagnosed) {
  DiagnosticEngine diags;
  Parser::parse("void f() {\n#pragma @Annotation no-braces\nint x = 0;\n}",
                "t.mc", diags);
  EXPECT_TRUE(diags.hasErrors());
  EXPECT_TRUE(diags.containsMessage("malformed @Annotation"));
}

TEST(Parser, IfElseChain) {
  auto unit = parseOk("void f(int a) {\n"
                      "  if (a > 0) { a = 1; } else if (a < 0) { a = 2; }\n"
                      "  else { a = 3; }\n"
                      "}");
  const Statement &ifStmt = *unit->functions[0]->bodyStmt->body[0];
  EXPECT_EQ(ifStmt.kind, StmtKind::If);
  ASSERT_NE(ifStmt.elseBranch, nullptr);
  EXPECT_EQ(ifStmt.elseBranch->kind, StmtKind::If);
}

TEST(Parser, WhileLoop) {
  auto unit = parseOk("void f(int a) { while (a > 0) { a = a - 1; } }");
  const Statement &w = *unit->functions[0]->bodyStmt->body[0];
  EXPECT_EQ(w.kind, StmtKind::While);
  ASSERT_NE(w.forCond, nullptr);
  ASSERT_NE(w.loopBody, nullptr);
}

TEST(Parser, LineNumbersPreservedOnStatements) {
  auto unit = parseOk("void f(int a) {\n" // line 1
                      "  a = 1;\n"        // line 2
                      "  a = 2;\n"        // line 3
                      "}");
  const auto &stmts = unit->functions[0]->bodyStmt->body;
  EXPECT_EQ(stmts[0]->range.begin.line, 2u);
  EXPECT_EQ(stmts[1]->range.begin.line, 3u);
}

TEST(Parser, ErrorRecoveryProducesDiagnosticsNotCrash) {
  DiagnosticEngine diags;
  auto unit = Parser::parse("void f() { int x = ; y***; }", "t.mc", diags);
  EXPECT_TRUE(diags.hasErrors());
  ASSERT_NE(unit, nullptr); // partial AST still returned
}

TEST(Parser, MissingSemicolonDiagnosed) {
  DiagnosticEngine diags;
  Parser::parse("void f() { int x = 1 }", "t.mc", diags);
  EXPECT_TRUE(diags.hasErrors());
}

TEST(Parser, FindFunctionQualifiedLookup) {
  auto unit = parseOk("class A { public: void m(int i) { i = i; } };\n"
                      "void g() { }\n");
  EXPECT_NE(unit->findFunction("A::m"), nullptr);
  EXPECT_NE(unit->findFunction("g"), nullptr);
  EXPECT_EQ(unit->findFunction("nope"), nullptr);
  EXPECT_EQ(unit->allFunctions().size(), 2u);
}

} // namespace
} // namespace mira::frontend
