#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>

#include "support/diagnostics.h"
#include "support/source_location.h"
#include "support/string_utils.h"
#include "support/thread_pool.h"

namespace mira {
namespace {

TEST(SourceLocation, InvalidByDefault) {
  SourceLocation loc;
  EXPECT_FALSE(loc.isValid());
  EXPECT_EQ(loc.str(), "<unknown>");
}

TEST(SourceLocation, Ordering) {
  SourceLocation a{1, 5}, b{1, 9}, c{2, 1};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_EQ(a, (SourceLocation{1, 5}));
  EXPECT_NE(a, b);
}

TEST(SourceRange, ContainsLine) {
  SourceRange r{{3, 1}, {7, 80}};
  EXPECT_TRUE(r.containsLine(3));
  EXPECT_TRUE(r.containsLine(5));
  EXPECT_TRUE(r.containsLine(7));
  EXPECT_FALSE(r.containsLine(2));
  EXPECT_FALSE(r.containsLine(8));
}

TEST(SourceRange, OpenEndedContainsAnythingAfterBegin) {
  SourceRange r{{3, 1}, {}};
  EXPECT_TRUE(r.containsLine(1000));
  EXPECT_FALSE(r.containsLine(2));
}

TEST(Diagnostics, CountsBySeverity) {
  DiagnosticEngine diags;
  diags.error({1, 1}, "bad thing");
  diags.warning({2, 1}, "iffy thing");
  diags.note({2, 1}, "context");
  EXPECT_TRUE(diags.hasErrors());
  EXPECT_EQ(diags.errorCount(), 1u);
  EXPECT_EQ(diags.warningCount(), 1u);
  EXPECT_EQ(diags.all().size(), 3u);
}

TEST(Diagnostics, ContainsMessage) {
  DiagnosticEngine diags;
  diags.error({1, 1}, "unexpected token '}'");
  EXPECT_TRUE(diags.containsMessage("unexpected token"));
  EXPECT_FALSE(diags.containsMessage("no such message"));
}

TEST(Diagnostics, StrFormatsLocationAndSeverity) {
  DiagnosticEngine diags;
  diags.error({4, 2}, "boom");
  EXPECT_EQ(diags.str(), "4:2: error: boom\n");
}

TEST(Diagnostics, ClearResets) {
  DiagnosticEngine diags;
  diags.error({1, 1}, "x");
  diags.clear();
  EXPECT_FALSE(diags.hasErrors());
  EXPECT_TRUE(diags.all().empty());
}

TEST(StringUtils, Split) {
  auto parts = splitString("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(StringUtils, Trim) {
  EXPECT_EQ(trim("  hi \t\n"), "hi");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(StringUtils, StartsEndsWith) {
  EXPECT_TRUE(startsWith("mira_model", "mira"));
  EXPECT_FALSE(startsWith("mi", "mira"));
  EXPECT_TRUE(endsWith("model.py", ".py"));
  EXPECT_FALSE(endsWith("py", "model.py"));
}

TEST(StringUtils, ParseInt64) {
  std::int64_t v = 0;
  EXPECT_TRUE(parseInt64("42", v));
  EXPECT_EQ(v, 42);
  EXPECT_TRUE(parseInt64("  -7 ", v));
  EXPECT_EQ(v, -7);
  EXPECT_FALSE(parseInt64("12x", v));
  EXPECT_FALSE(parseInt64("", v));
  EXPECT_FALSE(parseInt64("99999999999999999999999", v));
}

TEST(StringUtils, FormatCountUsesScientificForBigValues) {
  EXPECT_EQ(formatCount(0), "0");
  EXPECT_EQ(formatCount(123), "123");
  std::string big = formatCount(2.05e10);
  EXPECT_NE(big.find("E10"), std::string::npos);
}

TEST(StringUtils, FormatPercent) {
  EXPECT_EQ(formatPercent(0.0308), "3.08%");
  EXPECT_EQ(formatPercent(0.0000123), "0.0012%");
}

TEST(StringUtils, Padding) {
  EXPECT_EQ(padRight("ab", 4), "ab  ");
  EXPECT_EQ(padLeft("ab", 4), "  ab");
  EXPECT_EQ(padRight("abcdef", 4), "abcdef");
}

// ---------------------------------------------------------------- thread pool

TEST(ThreadPool, ContainsThrowingTasks) {
  ThreadPool pool(2);
  std::atomic<int> handled{0};
  pool.setExceptionHandler([&handled] { ++handled; });
  std::atomic<int> ran{0};
  for (int i = 0; i < 8; ++i)
    pool.submit([&ran, i] {
      ++ran;
      if (i % 2 == 0)
        throw std::runtime_error("task failure");
    });
  // A throwing task must not take the worker (let alone the process via
  // std::terminate) down: waitIdle() still drains, every task still ran.
  pool.waitIdle();
  EXPECT_EQ(ran.load(), 8);
  EXPECT_EQ(pool.taskExceptions(), 4u);
  EXPECT_EQ(handled.load(), 4);

  // The pool stays healthy for subsequent work.
  std::atomic<bool> after{false};
  pool.submit([&after] { after = true; });
  pool.waitIdle();
  EXPECT_TRUE(after.load());
  EXPECT_EQ(pool.taskExceptions(), 4u);
}

TEST(ThreadPool, NonStdExceptionIsContainedToo) {
  ThreadPool pool(1);
  pool.submit([] { throw 42; }); // catch (...) path
  pool.waitIdle();
  EXPECT_EQ(pool.taskExceptions(), 1u);
}

} // namespace
} // namespace mira
