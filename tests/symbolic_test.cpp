#include <gtest/gtest.h>

#include <limits>

#include "symbolic/expr.h"
#include "symbolic/interner.h"
#include "symbolic/polynomial.h"
#include "symbolic/rational.h"
#include "symbolic/summation.h"

namespace mira::symbolic {
namespace {

// ---------------------------------------------------------------- Rational

TEST(Rational, NormalizesSignAndGcd) {
  Rational r(6, -4);
  EXPECT_EQ(r.num(), -3);
  EXPECT_EQ(r.den(), 2);
  EXPECT_EQ(Rational(0, 5), Rational(0));
}

TEST(Rational, Arithmetic) {
  Rational a(1, 2), b(1, 3);
  EXPECT_EQ(a + b, Rational(5, 6));
  EXPECT_EQ(a - b, Rational(1, 6));
  EXPECT_EQ(a * b, Rational(1, 6));
  EXPECT_EQ(a / b, Rational(3, 2));
  EXPECT_EQ(-a, Rational(-1, 2));
}

TEST(Rational, Comparison) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_GE(Rational(2, 4), Rational(1, 2));
}

TEST(Rational, IntegerConversion) {
  EXPECT_TRUE(Rational(8, 4).isInteger());
  EXPECT_EQ(Rational(8, 4).asInteger(), 2);
  EXPECT_THROW(Rational(1, 2).asInteger(), ArithmeticError);
  EXPECT_THROW(Rational(1, 0), ArithmeticError);
}

TEST(CheckedArithmetic, Overflow) {
  EXPECT_THROW(checkedMul(INT64_MAX, 2), ArithmeticError);
  EXPECT_THROW(checkedAdd(INT64_MAX, 1), ArithmeticError);
  EXPECT_EQ(checkedSub(5, 7), -2);
}

TEST(FloorOps, MathematicalSemantics) {
  EXPECT_EQ(floorDiv(7, 2), 3);
  EXPECT_EQ(floorDiv(-7, 2), -4);
  EXPECT_EQ(floorMod(-7, 2), 1);
  EXPECT_EQ(floorMod(7, 4), 3);
  EXPECT_THROW(floorDiv(1, 0), ArithmeticError);
}

TEST(Binomial, KnownValues) {
  EXPECT_EQ(binomial(5, 2), 10);
  EXPECT_EQ(binomial(10, 0), 1);
  EXPECT_EQ(binomial(10, 10), 1);
  EXPECT_EQ(binomial(3, 5), 0);
  EXPECT_EQ(binomial(20, 10), 184756);
}

// -------------------------------------------------------------------- Expr

TEST(Expr, ConstantFolding) {
  Expr e = Expr::intConst(2) + Expr::intConst(3);
  EXPECT_TRUE(e.isIntConst(5));
  e = Expr::intConst(4) * Expr::intConst(6);
  EXPECT_TRUE(e.isIntConst(24));
}

TEST(Expr, LikeTermCombination) {
  Expr n = Expr::param("N");
  Expr e = n + n + n;
  Env env{{"N", 7}};
  EXPECT_EQ(e.evaluate(env), 21);
  // 3*N - 3*N == 0 structurally
  Expr z = e - e;
  EXPECT_TRUE(z.isIntConst(0));
}

TEST(Expr, CanonicalizationMakesEqualExprsEqual) {
  Expr a = Expr::param("x") + Expr::param("y");
  Expr b = Expr::param("y") + Expr::param("x");
  EXPECT_TRUE(a.equals(b));
  Expr c = Expr::param("x") * Expr::param("y") * Expr::intConst(2);
  Expr d = Expr::intConst(2) * Expr::param("y") * Expr::param("x");
  EXPECT_TRUE(c.equals(d));
}

TEST(Expr, EvaluateMissingParamFails) {
  Expr e = Expr::param("N") + Expr::intConst(1);
  EXPECT_FALSE(e.evaluate({}).has_value());
}

TEST(Expr, FloorDivModMinMax) {
  Expr n = Expr::param("N");
  Env env{{"N", 10}};
  EXPECT_EQ(Expr::floorDiv(n, Expr::intConst(3)).evaluate(env), 3);
  EXPECT_EQ(Expr::mod(n, Expr::intConst(3)).evaluate(env), 1);
  EXPECT_EQ(Expr::min(n, Expr::intConst(4)).evaluate(env), 4);
  EXPECT_EQ(Expr::max(n, Expr::intConst(4)).evaluate(env), 10);
}

TEST(Expr, FloorDivByOneIsIdentity) {
  Expr n = Expr::param("N");
  EXPECT_TRUE(Expr::floorDiv(n, Expr::intConst(1)).equals(n));
}

TEST(Expr, ExactDivDetectsRemainder) {
  Expr e = Expr::exactDiv(Expr::param("N"), Expr::intConst(2));
  EXPECT_EQ(e.evaluate({{"N", 10}}), 5);
  // A remainder indicates a bug in the closed-form producer: evaluation
  // must fail loudly (nullopt), not round silently.
  EXPECT_FALSE(e.evaluate({{"N", 11}}).has_value());
}

TEST(Expr, SumEvaluates) {
  // sum_{i=1}^{N} i = N(N+1)/2
  Expr s = Expr::sum("i", Expr::intConst(1), Expr::param("N"),
                     Expr::param("i"));
  EXPECT_EQ(s.evaluate({{"N", 100}}), 5050);
}

TEST(Expr, SumEmptyRangeIsZero) {
  Expr s = Expr::sum("i", Expr::intConst(5), Expr::intConst(4),
                     Expr::param("i"));
  EXPECT_TRUE(s.isIntConst(0));
}

TEST(Expr, SumBindsItsVariable) {
  Expr s = Expr::sum("i", Expr::intConst(1), Expr::intConst(3),
                     Expr::param("i") * Expr::param("M"));
  auto params = s.parameters();
  EXPECT_TRUE(params.count("M"));
  EXPECT_FALSE(params.count("i"));
}

TEST(Expr, Substitute) {
  Expr e = Expr::param("N") * Expr::param("N") + Expr::intConst(1);
  Expr sub = e.substitute("N", Expr::intConst(5));
  EXPECT_TRUE(sub.isIntConst(26));
}

TEST(Expr, SubstituteRespectsSumBinding) {
  // substituting "i" must not touch the bound variable inside the sum body
  Expr s = Expr::sum("i", Expr::intConst(1), Expr::param("i"),
                     Expr::param("i"));
  Expr sub = s.substitute("i", Expr::intConst(4));
  // outer occurrence (the hi bound) replaced; body still sums the bound var
  EXPECT_EQ(sub.evaluate({}), 10); // 1+2+3+4
}

TEST(Expr, PythonPrinting) {
  Expr e = Expr::floorDiv(Expr::param("N"), Expr::intConst(2));
  EXPECT_NE(e.toPython().find("//"), std::string::npos);
  Expr s = Expr::sum("i", Expr::intConst(1), Expr::param("N"),
                     Expr::param("i"));
  EXPECT_NE(s.toPython().find("range("), std::string::npos);
}

TEST(Expr, EvaluateOverflowReturnsNullopt) {
  Expr e = Expr::param("N") * Expr::param("N");
  EXPECT_FALSE(e.evaluate({{"N", INT64_MAX / 2}}).has_value());
}

// -------------------------------------------------------------- Polynomial

TEST(Polynomial, BasicArithmetic) {
  Polynomial x = Polynomial::variable("x");
  Polynomial p = x * x + x.scaled(Rational(2)) + Polynomial{Rational(1)};
  EXPECT_EQ(p.degree(), 2);
  EXPECT_EQ(p.evaluate({{"x", 3}}), 16); // 9 + 6 + 1
}

TEST(Polynomial, MultivariateProduct) {
  Polynomial x = Polynomial::variable("x");
  Polynomial y = Polynomial::variable("y");
  Polynomial p = (x + y) * (x - y); // x^2 - y^2
  EXPECT_EQ(p.evaluate({{"x", 5}, {"y", 3}}), 16);
  EXPECT_EQ(p.degreeIn("x"), 2);
  EXPECT_EQ(p.degreeIn("y"), 2);
}

TEST(Polynomial, CancellationYieldsZero) {
  Polynomial x = Polynomial::variable("x");
  Polynomial z = x - x;
  EXPECT_TRUE(z.isZero());
  EXPECT_EQ(z.degree(), 0);
}

TEST(Polynomial, Substitute) {
  Polynomial x = Polynomial::variable("x");
  Polynomial p = x * x; // x^2
  Polynomial q = p.substitute(
      "x", Polynomial::variable("y") + Polynomial{Rational(1)});
  EXPECT_EQ(q.evaluate({{"y", 2}}), 9); // (2+1)^2
}

TEST(Polynomial, CoefficientsIn) {
  Polynomial x = Polynomial::variable("x");
  Polynomial n = Polynomial::variable("N");
  Polynomial p = x * x * n + x.scaled(Rational(3)) + Polynomial{Rational(7)};
  auto coeffs = p.coefficientsIn("x");
  ASSERT_EQ(coeffs.size(), 3u);
  EXPECT_EQ(coeffs[0].evaluate({}), 7);
  EXPECT_EQ(coeffs[1].evaluate({}), 3);
  EXPECT_EQ(coeffs[2].evaluate({{"N", 4}}), 4);
}

TEST(Polynomial, ToExprRoundTrip) {
  // p = (N^2 + N) / 2 — integer-valued with rational coefficients.
  Polynomial n = Polynomial::variable("N");
  Polynomial p = (n * n + n).scaled(Rational(1, 2));
  Expr e = p.toExpr();
  EXPECT_EQ(e.evaluate({{"N", 9}}), 45);
  auto back = Polynomial::fromExpr(e);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->evaluate({{"N", 9}}), 45);
}

TEST(Polynomial, FromExprRejectsFloorDiv) {
  Expr e = Expr::floorDiv(Expr::param("N"), Expr::intConst(2));
  EXPECT_FALSE(Polynomial::fromExpr(e).has_value());
}

// --------------------------------------------------------------- Summation

TEST(Summation, BernoulliNumbers) {
  EXPECT_EQ(bernoulliPlus(0), Rational(1));
  EXPECT_EQ(bernoulliPlus(1), Rational(1, 2));
  EXPECT_EQ(bernoulliPlus(2), Rational(1, 6));
  EXPECT_EQ(bernoulliPlus(3), Rational(0));
  EXPECT_EQ(bernoulliPlus(4), Rational(-1, 30));
  EXPECT_EQ(bernoulliPlus(6), Rational(1, 42));
  EXPECT_EQ(bernoulliPlus(8), Rational(-1, 30));
}

TEST(Summation, FaulhaberKnownFormulas) {
  // S_0(n) = n
  EXPECT_EQ(faulhaber(0, "n").evaluate({{"n", 17}}), 17);
  // S_1(n) = n(n+1)/2
  EXPECT_EQ(faulhaber(1, "n").evaluate({{"n", 100}}), 5050);
  // S_2(n) = n(n+1)(2n+1)/6
  EXPECT_EQ(faulhaber(2, "n").evaluate({{"n", 10}}), 385);
  // S_3(n) = (n(n+1)/2)^2
  EXPECT_EQ(faulhaber(3, "n").evaluate({{"n", 10}}), 3025);
}

class FaulhaberSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(FaulhaberSweep, MatchesBruteForce) {
  auto [k, n] = GetParam();
  Polynomial s = faulhaber(k, "n");
  std::int64_t expected = 0;
  for (int i = 1; i <= n; ++i) {
    std::int64_t pw = 1;
    for (int j = 0; j < k; ++j)
      pw *= i;
    expected += pw;
  }
  EXPECT_EQ(s.evaluate({{"n", n}}), expected)
      << "k=" << k << " n=" << n;
}

INSTANTIATE_TEST_SUITE_P(
    KNSweep, FaulhaberSweep,
    ::testing::Combine(::testing::Values(0, 1, 2, 3, 4, 5, 6, 7),
                       ::testing::Values(0, 1, 2, 5, 13, 40)));

TEST(Summation, SumOverRangeTriangular) {
  // Sum_{j=i+1}^{6} 1 = 6 - i for i <= 6
  Polynomial one{Rational(1)};
  Polynomial lo = Polynomial::variable("i") + Polynomial{Rational(1)};
  Polynomial hi{Rational(6)};
  Polynomial s = sumOverRange(one, "j", lo, hi);
  EXPECT_EQ(s.evaluate({{"i", 1}}), 5);
  EXPECT_EQ(s.evaluate({{"i", 4}}), 2);
}

TEST(Summation, NestedTriangularCountMatchesPaperListing2) {
  // Paper Listing 2: for i in 1..4, for j in i+1..6 — 14 iterations total.
  Polynomial inner = sumOverRange(Polynomial{Rational(1)}, "j",
                                  Polynomial::variable("i") +
                                      Polynomial{Rational(1)},
                                  Polynomial{Rational(6)});
  Polynomial total = sumOverRange(inner, "i", Polynomial{Rational(1)},
                                  Polynomial{Rational(4)});
  EXPECT_EQ(total.evaluate({}), 14);
}

TEST(Summation, ParametricRectangle) {
  // Sum_{i=0}^{N-1} Sum_{j=0}^{M-1} 1 = N*M
  Polynomial n = Polynomial::variable("N");
  Polynomial m = Polynomial::variable("M");
  Polynomial inner =
      sumOverRange(Polynomial{Rational(1)}, "j", Polynomial{Rational(0)},
                   m - Polynomial{Rational(1)});
  Polynomial total = sumOverRange(inner, "i", Polynomial{Rational(0)},
                                  n - Polynomial{Rational(1)});
  EXPECT_EQ(total.evaluate({{"N", 12}, {"M", 9}}), 108);
}

// ---------------------------------------------------------------- interner

TEST(Interner, EqualsIsPointerIdentityWithinOneInterner) {
  ExprInterner interner;
  ExprInterner::Scope scope(interner);
  Expr a = Expr::param("N") * Expr::param("M") + Expr::intConst(3);
  Expr b = Expr::param("N") * Expr::param("M") + Expr::intConst(3);
  // Hash-consing: structurally equal construction yields the same node.
  EXPECT_EQ(&a.node(), &b.node());
  EXPECT_TRUE(a.equals(b));
  Expr c = a + Expr::intConst(1);
  EXPECT_NE(&a.node(), &c.node());
  EXPECT_FALSE(a.equals(c));
}

TEST(Interner, CommutedConstructionSharesTheCanonicalNode) {
  ExprInterner interner;
  ExprInterner::Scope scope(interner);
  Expr a = Expr::param("x") + Expr::param("y");
  Expr b = Expr::param("y") + Expr::param("x");
  EXPECT_EQ(&a.node(), &b.node());
}

TEST(Interner, EqualsFallsBackToStructureAcrossInterners) {
  auto build = [] {
    return Expr::sum("i", Expr::intConst(1), Expr::param("N"),
                     Expr::param("i") * Expr::param("i"));
  };
  ExprInterner first;
  ExprInterner second;
  Expr a, b;
  {
    ExprInterner::Scope scope(first);
    a = build();
  }
  {
    ExprInterner::Scope scope(second);
    b = build();
  }
  EXPECT_NE(&a.node(), &b.node()); // different arenas, different nodes
  EXPECT_TRUE(a.equals(b));        // hash + deep walk still agree
}

TEST(Interner, ReinternPreservesStructureAndDedups) {
  ExprInterner first;
  Expr original;
  {
    ExprInterner::Scope scope(first);
    original = Expr::param("N") * Expr::intConst(7) + Expr::param("k");
  }
  ExprInterner second;
  {
    ExprInterner::Scope scope(second);
    Expr restored = Expr::fromNode(
        std::shared_ptr<const ExprNode>(ExprNodeRef(), &original.node()));
    EXPECT_EQ(restored.str(), original.str());
    EXPECT_TRUE(restored.equals(original));
    // A second trip lands on the node the first trip created.
    Expr again = Expr::fromNode(
        std::shared_ptr<const ExprNode>(ExprNodeRef(), &original.node()));
    EXPECT_EQ(&restored.node(), &again.node());
  }
}

TEST(Interner, CountersAdvance) {
  const InternStats before = ExprInterner::globalStats();
  ExprInterner interner;
  ExprInterner::Scope scope(interner);
  Expr a = Expr::param("fresh_counter_param") + Expr::intConst(41);
  Expr b = Expr::param("fresh_counter_param") + Expr::intConst(41);
  EXPECT_TRUE(a.equals(b));
  const InternStats after = ExprInterner::globalStats();
  EXPECT_GT(after.misses, before.misses); // new unique nodes were created
  EXPECT_GT(after.hits, before.hits);     // the rebuild hit the table
}

// ------------------------------------------------- builder crash fixes

TEST(Expr, ZeroDivisorConstantFoldDoesNotThrow) {
  Expr fd = Expr::floorDiv(Expr::intConst(5), Expr::intConst(0));
  EXPECT_EQ(fd.kind(), ExprKind::FloorDiv); // stays symbolic
  EXPECT_EQ(fd.evaluate({}), std::nullopt); // documented contract
  Expr md = Expr::mod(Expr::intConst(5), Expr::intConst(0));
  EXPECT_EQ(md.kind(), ExprKind::Mod);
  EXPECT_EQ(md.evaluate({}), std::nullopt);
}

TEST(Expr, FloorDivIntMinByMinusOneStaysSymbolic) {
  const std::int64_t kMin = std::numeric_limits<std::int64_t>::min();
  // The one in-range division whose quotient overflows int64: folding it
  // (or evaluating it) must not be UB or a throw out of the builder.
  Expr fd = Expr::floorDiv(Expr::intConst(kMin), Expr::intConst(-1));
  EXPECT_EQ(fd.kind(), ExprKind::FloorDiv);
  EXPECT_EQ(fd.evaluate({}), std::nullopt);
  Expr ed = Expr::exactDiv(Expr::intConst(kMin), Expr::intConst(-1));
  EXPECT_EQ(ed.kind(), ExprKind::ExactDiv);
  EXPECT_THROW(mira::symbolic::floorDiv(kMin, -1), ArithmeticError);
}

TEST(Expr, OverflowingConstantFoldsStaySymbolic) {
  const std::int64_t kMax = std::numeric_limits<std::int64_t>::max();
  Expr a = Expr::add({Expr::intConst(kMax), Expr::intConst(1)});
  EXPECT_EQ(a.evaluate({}), std::nullopt); // overflow surfaces at evaluate
  Expr m = Expr::mul({Expr::intConst(kMax), Expr::intConst(2)});
  EXPECT_EQ(m.evaluate({}), std::nullopt);
  // Like-term coefficient merge overflow keeps the terms separate
  // instead of throwing.
  Expr big = Expr::intConst(kMax) * Expr::param("N");
  Expr doubled = Expr::add({big, big});
  EXPECT_EQ(doubled.evaluate({{"N", 0}}), 0);
  // Sum const fold where count * body overflows.
  Expr s = Expr::sum("i", Expr::intConst(0), Expr::intConst(kMax - 1),
                     Expr::intConst(kMax));
  EXPECT_EQ(s.kind(), ExprKind::Sum);
}

TEST(Expr, SubstituteAlphaRenamesOnCapture) {
  // Sum(i, 1, N, N + i) with N -> i: the replacement references the
  // bound variable, so the binder must be renamed before substituting —
  // otherwise the outer i is captured and the meaning changes.
  Expr body = Expr::param("N") + Expr::param("i");
  Expr s = Expr::sum("i", Expr::intConst(1), Expr::intConst(3), body);
  EXPECT_EQ(s.evaluate({{"N", 3}}), 15); // (3+1)+(3+2)+(3+3)

  Expr substituted = s.substitute("N", Expr::param("i"));
  // Same meaning with the outer parameter now spelled i.
  EXPECT_EQ(substituted.evaluate({{"i", 3}}), 15);
  // The capturing reading would have produced Sum(i,1,3,2i) = 12.
  EXPECT_NE(substituted.evaluate({{"i", 3}}), 12);
  // Only the free N was rewritten: the result depends on outer i alone.
  EXPECT_EQ(substituted.parameters(), std::set<std::string>{"i"});
}

TEST(Expr, SubstituteDoesNotRenameWithoutCapture) {
  Expr body = Expr::param("N") + Expr::param("i");
  Expr s = Expr::sum("i", Expr::intConst(1), Expr::param("N"), body);
  Expr substituted = s.substitute("N", Expr::param("M"));
  EXPECT_EQ(substituted.node().name, "i"); // binder untouched
  EXPECT_EQ(substituted.evaluate({{"M", 3}}), 15);
}

class RangeSumProperty
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(RangeSumProperty, QuadraticBodyMatchesBruteForce) {
  auto [lo, hi, scale] = GetParam();
  if (hi < lo - 1)
    GTEST_SKIP() << "outside the documented domain (hi >= lo-1)";
  // body: scale*i^2 - i + 3
  Polynomial i = Polynomial::variable("i");
  Polynomial body =
      i * i * Polynomial{Rational(scale)} - i + Polynomial{Rational(3)};
  Polynomial s = sumOverRange(body, "i", Polynomial{Rational(lo)},
                              Polynomial{Rational(hi)});
  std::int64_t expected = 0;
  for (int v = lo; v <= hi; ++v)
    expected += scale * v * v - v + 3;
  EXPECT_EQ(s.evaluate({}), expected);
}

INSTANTIATE_TEST_SUITE_P(
    Ranges, RangeSumProperty,
    ::testing::Combine(::testing::Values(-3, 0, 1, 5),
                       ::testing::Values(-3, 0, 4, 17),
                       ::testing::Values(1, 2, 7)));

} // namespace
} // namespace mira::symbolic
