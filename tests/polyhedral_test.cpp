#include <gtest/gtest.h>

#include <random>

#include "polyhedral/affine.h"
#include "polyhedral/counting.h"
#include "polyhedral/fourier_motzkin.h"

namespace mira::polyhedral {
namespace {

using symbolic::Env;
using symbolic::Expr;

AffineExpr var(const std::string &name) { return AffineExpr::variable(name); }
AffineExpr cst(std::int64_t v) { return AffineExpr(v); }

// ------------------------------------------------------------- AffineExpr

TEST(AffineExpr, Arithmetic) {
  AffineExpr e = var("i").scaled(2) + var("j") - cst(3);
  EXPECT_EQ(e.coeff("i"), 2);
  EXPECT_EQ(e.coeff("j"), 1);
  EXPECT_EQ(e.constant(), -3);
  EXPECT_EQ(e.evaluate({{"i", 4}, {"j", 1}}), 6);
}

TEST(AffineExpr, CancellationRemovesTerm) {
  AffineExpr e = var("i") - var("i");
  EXPECT_TRUE(e.isConstant());
  EXPECT_FALSE(e.involves("i"));
}

TEST(AffineExpr, Substitute) {
  AffineExpr e = var("j").scaled(3) + cst(1);
  AffineExpr r = e.substitute("j", var("i") + cst(2));
  EXPECT_EQ(r.coeff("i"), 3);
  EXPECT_EQ(r.constant(), 7);
}

TEST(AffineExpr, ExprRoundTrip) {
  AffineExpr e = var("N").scaled(2) - var("i") + cst(5);
  auto back = AffineExpr::fromExpr(e.toExpr());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, e);
}

TEST(AffineExpr, FromExprRejectsQuadratic) {
  Expr q = Expr::param("N") * Expr::param("N");
  EXPECT_FALSE(AffineExpr::fromExpr(q).has_value());
}

TEST(AffineConstraint, NormalizationLT) {
  // i < N  ->  N - i - 1 >= 0
  auto cs = AffineConstraint::make(var("i"), CmpRel::LT, var("N"));
  ASSERT_EQ(cs.size(), 1u);
  EXPECT_EQ(cs[0].holds({{"i", 4}, {"N", 5}}), true);
  EXPECT_EQ(cs[0].holds({{"i", 5}, {"N", 5}}), false);
}

TEST(AffineConstraint, EqYieldsTwoConstraints) {
  auto cs = AffineConstraint::make(var("i"), CmpRel::EQ, cst(3));
  ASSERT_EQ(cs.size(), 2u);
  EXPECT_EQ(cs[0].holds({{"i", 3}}), true);
  EXPECT_EQ(cs[1].holds({{"i", 3}}), true);
  EXPECT_TRUE(cs[0].holds({{"i", 4}}) == false ||
              cs[1].holds({{"i", 4}}) == false);
}

TEST(Congruence, HoldsAndNegation) {
  Congruence c{var("j"), 4, false};
  EXPECT_EQ(c.holds({{"j", 8}}), true);
  EXPECT_EQ(c.holds({{"j", 9}}), false);
  c.negated = true;
  EXPECT_EQ(c.holds({{"j", 9}}), true);
}

// --------------------------------------------------------- FourierMotzkin

TEST(FourierMotzkin, DetectsEmptySystem) {
  // i >= 5 and i <= 3 is empty.
  ConstraintSystem sys;
  sys.add(AffineConstraint::make(var("i"), CmpRel::GE, cst(5)));
  sys.add(AffineConstraint::make(var("i"), CmpRel::LE, cst(3)));
  EXPECT_TRUE(sys.isRationallyEmpty());
}

TEST(FourierMotzkin, FeasibleSystemNotEmpty) {
  ConstraintSystem sys;
  sys.add(AffineConstraint::make(var("i"), CmpRel::GE, cst(1)));
  sys.add(AffineConstraint::make(var("i"), CmpRel::LE, cst(4)));
  sys.add(AffineConstraint::make(var("j"), CmpRel::GE, var("i") + cst(1)));
  sys.add(AffineConstraint::make(var("j"), CmpRel::LE, cst(6)));
  EXPECT_FALSE(sys.isRationallyEmpty());
}

TEST(FourierMotzkin, EliminationPropagatesTransitiveBounds) {
  // j >= i+1, j <= 6; eliminating j leaves i <= 5.
  ConstraintSystem sys;
  sys.add(AffineConstraint::make(var("j"), CmpRel::GE, var("i") + cst(1)));
  sys.add(AffineConstraint::make(var("j"), CmpRel::LE, cst(6)));
  ConstraintSystem out = sys.eliminate("j");
  auto bounds = out.integerBounds("i", {});
  ASSERT_FALSE(bounds.has_value()); // i has no lower bound
  // Add one and check the box.
  out.add(AffineConstraint::make(var("i"), CmpRel::GE, cst(1)));
  bounds = out.integerBounds("i", {});
  ASSERT_TRUE(bounds.has_value());
  EXPECT_EQ(bounds->first, 1);
  EXPECT_EQ(bounds->second, 5);
}

TEST(FourierMotzkin, IntegerBoundsWithNonUnitCoefficients) {
  // 2i >= 3 -> i >= 2;  3i <= 10 -> i <= 3
  ConstraintSystem sys;
  sys.add(AffineConstraint{var("i").scaled(2) - cst(3)});
  sys.add(AffineConstraint{cst(10) - var("i").scaled(3)});
  auto bounds = sys.integerBounds("i", {});
  ASSERT_TRUE(bounds.has_value());
  EXPECT_EQ(bounds->first, 2);
  EXPECT_EQ(bounds->second, 3);
}

TEST(FourierMotzkin, SubstitutedFixesVariable) {
  ConstraintSystem sys;
  sys.add(AffineConstraint::make(var("j"), CmpRel::GE, var("i") + cst(1)));
  sys.add(AffineConstraint::make(var("j"), CmpRel::LE, cst(6)));
  ConstraintSystem fixed = sys.substituted("i", 4);
  auto bounds = fixed.integerBounds("j", {});
  ASSERT_TRUE(bounds.has_value());
  EXPECT_EQ(bounds->first, 5);
  EXPECT_EQ(bounds->second, 6);
}

// ----------------------------------------------------------------- Counting

IterationDomain paperListing2() {
  // for (i = 1; i <= 4; i++) for (j = i+1; j <= 6; j++)
  IterationDomain d;
  d.levels.push_back(LoopLevel::make("i", cst(1), cst(4)));
  d.levels.push_back(LoopLevel::make("j", var("i") + cst(1), cst(6)));
  return d;
}

TEST(Counting, BasicLoopListing1) {
  // for (i = 0; i < 10; i++) -> 10 iterations
  IterationDomain d;
  d.levels.push_back(LoopLevel::make("i", cst(0), cst(9)));
  CountResult r = countIterations(d);
  EXPECT_TRUE(r.count.isIntConst(10));
  EXPECT_TRUE(r.exact);
}

TEST(Counting, TriangularNestListing2) {
  CountResult r = countIterations(paperListing2());
  EXPECT_TRUE(r.count.isIntConst(14)) << r.count.str();
}

TEST(Counting, IfConstraintListing4ShrinksDomain) {
  // Listing 4: same nest + if (j > 4). Fig. 4(b): constraint shrinks the
  // polyhedron. Points with j in {5,6}: i=1: j=5,6; i=2: 5,6; i=3: 5,6;
  // i=4: 5,6 -> 8.
  IterationDomain d = paperListing2();
  auto guard = AffineConstraint::make(var("j"), CmpRel::GT, cst(4));
  CountResult r = countIterations(d.withGuard(guard[0]));
  EXPECT_TRUE(r.count.isIntConst(8)) << r.count.str();
  // And it is smaller than the unconstrained count, as the paper notes.
  EXPECT_LT(*r.count.constValue(),
            *countIterations(paperListing2()).count.constValue());
}

TEST(Counting, ModuloConstraintListing5ComplementRule) {
  // Listing 5: if (j % 4 != 0) -> holes in the polyhedron (Fig. 4c).
  // Total 14; j==4 points: i=1,j=4; i=2,j=4; i=3,j=4 -> 3; true branch 11.
  IterationDomain d = paperListing2();
  CountResult r =
      countIterations(d.withCongruence(Congruence{var("j"), 4, true}));
  EXPECT_TRUE(r.count.isIntConst(11)) << r.count.str();
  // false branch (j % 4 == 0)
  CountResult rf =
      countIterations(d.withCongruence(Congruence{var("j"), 4, false}));
  EXPECT_TRUE(rf.count.isIntConst(3)) << rf.count.str();
}

TEST(Counting, ParametricRectangleClosedForm) {
  // for (i = 0; i < N; i++) for (j = 0; j < M; j++) -> N*M
  IterationDomain d;
  d.levels.push_back(LoopLevel::make("i", cst(0), var("N") - cst(1)));
  d.levels.push_back(LoopLevel::make("j", cst(0), var("M") - cst(1)));
  CountResult r = countIterations(d);
  EXPECT_EQ(r.method, CountMethod::ClosedForm);
  EXPECT_EQ(r.count.evaluate({{"N", 7}, {"M", 11}}), 77);
  EXPECT_EQ(r.count.evaluate({{"N", 1000}, {"M", 1000}}), 1000000);
}

TEST(Counting, ParametricTriangleClosedForm) {
  // for (i = 1; i <= N; i++) for (j = i; j <= N; j++) -> N(N+1)/2
  IterationDomain d;
  d.levels.push_back(LoopLevel::make("i", cst(1), var("N")));
  d.levels.push_back(LoopLevel::make("j", var("i"), var("N")));
  CountResult r = countIterations(d);
  EXPECT_EQ(r.method, CountMethod::ClosedForm);
  EXPECT_EQ(r.count.evaluate({{"N", 100}}), 5050);
}

TEST(Counting, ParametricCongruenceUsesFloorForm) {
  // for (j = 1; j <= N; j++) if (j % 4 == 0) -> floor(N/4)
  IterationDomain d;
  d.levels.push_back(LoopLevel::make("j", cst(1), var("N")));
  CountResult r =
      countIterations(d.withCongruence(Congruence{var("j"), 4, false}));
  EXPECT_EQ(r.count.evaluate({{"N", 16}}), 4);
  EXPECT_EQ(r.count.evaluate({{"N", 17}}), 4);
  EXPECT_EQ(r.count.evaluate({{"N", 19}}), 4);
  EXPECT_EQ(r.count.evaluate({{"N", 20}}), 5);
}

TEST(Counting, ParametricCongruenceComplement) {
  // if (j % 4 != 0) over j in 1..N -> N - floor(N/4)
  IterationDomain d;
  d.levels.push_back(LoopLevel::make("j", cst(1), var("N")));
  CountResult r =
      countIterations(d.withCongruence(Congruence{var("j"), 4, true}));
  EXPECT_EQ(r.count.evaluate({{"N", 16}}), 12);
  EXPECT_EQ(r.count.evaluate({{"N", 18}}), 14);
  EXPECT_NE(r.note.find("complement"), std::string::npos);
}

TEST(Counting, StridedInnermostLoop) {
  // for (i = 0; i <= N; i += 4) -> floor(N/4) + 1
  IterationDomain d;
  LoopLevel l = LoopLevel::make("i", cst(0), var("N"));
  l.step = 4;
  d.levels.push_back(l);
  CountResult r = countIterations(d);
  EXPECT_EQ(r.count.evaluate({{"N", 16}}), 5);
  EXPECT_EQ(r.count.evaluate({{"N", 15}}), 4);
}

TEST(Counting, MinMaxBoundsFallBackToLazySum) {
  // for (i = 1; i <= 4; i++) for (j = max(i+1,3); j <= 6; j++) with an
  // extra upper bound -> multiple bounds on j, parametric in U.
  IterationDomain d;
  d.levels.push_back(LoopLevel::make("i", cst(1), cst(4)));
  LoopLevel j = LoopLevel::make("j", var("i") + cst(1), cst(6));
  j.lowerBounds.push_back(cst(3));
  j.upperBounds.push_back(var("U"));
  d.levels.push_back(j);
  CountResult r = countIterations(d);
  EXPECT_EQ(r.method, CountMethod::LazySum);
  // brute force check at U = 5:
  auto brute = enumerateDomain(d, {{"U", 5}});
  ASSERT_TRUE(brute.has_value());
  EXPECT_EQ(r.count.evaluate({{"U", 5}}), *brute);
}

TEST(Counting, EmptyDomainHasCountOne) {
  // Zero levels: counting a statement not inside any loop.
  IterationDomain d;
  CountResult r = countIterations(d);
  EXPECT_TRUE(r.count.isIntConst(1));
}

TEST(Counting, MissingBoundsRequestsAnnotation) {
  IterationDomain d;
  LoopLevel l;
  l.var = "i";
  l.upperBounds.push_back(cst(5)); // no lower bound
  d.levels.push_back(l);
  CountResult r = countIterations(d);
  EXPECT_TRUE(r.requiresAnnotation);
}

TEST(Counting, ParameterOnlyGuardFlaggedInexact) {
  IterationDomain d;
  d.levels.push_back(LoopLevel::make("i", cst(1), var("N")));
  auto guard = AffineConstraint::make(var("P"), CmpRel::GT, cst(10));
  CountResult r = countIterations(d.withGuard(guard[0]));
  EXPECT_FALSE(r.exact);
  EXPECT_NE(r.note.find("annotation"), std::string::npos);
}

TEST(Counting, GuardOnOuterVariableFolds) {
  // for i in 1..N, for j in 1..N, if (i >= 3): count = (N-2)*N for N >= 2.
  IterationDomain d;
  d.levels.push_back(LoopLevel::make("i", cst(1), var("N")));
  d.levels.push_back(LoopLevel::make("j", cst(1), var("N")));
  auto guard = AffineConstraint::make(var("i"), CmpRel::GE, cst(3));
  CountResult r = countIterations(d.withGuard(guard[0]));
  EXPECT_EQ(r.count.evaluate({{"N", 10}}), 80);
}

// Property sweep: random affine triangular systems, closed form (or lazy
// sum) must match brute-force enumeration on every sampled parameter value.
class CountingProperty : public ::testing::TestWithParam<int> {};

TEST_P(CountingProperty, MatchesBruteForceOnRandomDomains) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()));
  std::uniform_int_distribution<int> small(0, 4);
  std::uniform_int_distribution<int> bound(4, 12);

  for (int trial = 0; trial < 40; ++trial) {
    IterationDomain d;
    int depth = 1 + small(rng) % 3;
    for (int lvl = 0; lvl < depth; ++lvl) {
      std::string v = "v" + std::to_string(lvl);
      AffineExpr lo = cst(small(rng));
      AffineExpr hi = cst(bound(rng));
      // Triangular dependence on the previous variable sometimes.
      if (lvl > 0 && small(rng) % 2 == 0)
        lo = var("v" + std::to_string(lvl - 1)) + cst(small(rng) % 2);
      // Parametric upper bound sometimes.
      bool parametric = small(rng) % 2 == 0;
      if (parametric)
        hi = var("N") + cst(small(rng));
      d.levels.push_back(LoopLevel::make(v, lo, hi));
    }
    CountResult r = countIterations(d);
    Env env{{"N", 9}};
    auto brute = enumerateDomain(d, env);
    ASSERT_TRUE(brute.has_value());
    auto symbolicCount = r.count.evaluate(env);
    ASSERT_TRUE(symbolicCount.has_value()) << d.str();
    // The closed form assumes non-degenerate ranges; brute force clamps.
    // Only compare when the domain is non-degenerate at this binding.
    if (*brute > 0) {
      EXPECT_EQ(*symbolicCount, *brute)
          << d.str() << " via " << toString(r.method);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CountingProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(Counting, CongruentRangeHelper) {
  // v in [1, 20], v ≡ 3 (mod 5): {3, 8, 13, 18} -> 4
  Expr c = countCongruentInRange(Expr::intConst(1), Expr::intConst(20),
                                 Expr::intConst(3), 5);
  EXPECT_TRUE(c.isIntConst(4));
}

} // namespace
} // namespace mira::polyhedral
