#include <gtest/gtest.h>

#include <random>

#include "isa/encoding.h"
#include "isa/instruction.h"
#include "objfile/objfile.h"

namespace mira::isa {
namespace {

TEST(Opcode, NamesRoundTrip) {
  for (std::size_t i = 0; i < kNumOpcodes; ++i) {
    Opcode op = static_cast<Opcode>(i);
    auto back = opcodeFromName(opcodeName(op));
    ASSERT_TRUE(back.has_value()) << opcodeName(op);
    // Several opcodes share mnemonics (movsd load/store/reg-reg);
    // round-trip must return an opcode with the same name.
    EXPECT_EQ(opcodeName(*back), opcodeName(op));
  }
}

TEST(Opcode, CategoriesMatchPaperTableII) {
  EXPECT_EQ(categoryName(defaultCategory(Opcode::ADDPD)),
            "SSE2 packed arithmetic instruction");
  EXPECT_EQ(categoryName(defaultCategory(Opcode::MOVSD_RM)),
            "SSE2 data movement instruction");
  EXPECT_EQ(categoryName(defaultCategory(Opcode::JMP)),
            "Integer control transfer instruction");
  EXPECT_EQ(categoryName(defaultCategory(Opcode::MOV)),
            "Integer data transfer instruction");
  EXPECT_EQ(categoryName(defaultCategory(Opcode::ADD)),
            "Integer arithmetic instruction");
  EXPECT_EQ(categoryName(defaultCategory(Opcode::CQO)),
            "64-bit mode instruction");
}

TEST(Opcode, SixtyFourCategories) {
  EXPECT_EQ(kNumCategories, 64u);
  // Every category has a unique printable name.
  std::set<std::string> names;
  for (std::size_t i = 0; i < kNumCategories; ++i)
    names.insert(categoryName(static_cast<InstrCategory>(i)));
  EXPECT_EQ(names.size(), kNumCategories);
}

TEST(Opcode, FlopAccounting) {
  EXPECT_TRUE(isFloatingPointArith(Opcode::ADDSD));
  EXPECT_TRUE(isFloatingPointArith(Opcode::MULPD));
  EXPECT_FALSE(isFloatingPointArith(Opcode::MOVSD_RM));
  EXPECT_FALSE(isFloatingPointArith(Opcode::UCOMISD));
  EXPECT_EQ(flopCount(Opcode::ADDSD), 1);
  EXPECT_EQ(flopCount(Opcode::ADDPD), 2); // packed = two lanes
}

TEST(Opcode, ControlTransferClassification) {
  EXPECT_TRUE(isControlTransfer(Opcode::RET));
  EXPECT_TRUE(isConditionalJump(Opcode::JLE));
  EXPECT_FALSE(isConditionalJump(Opcode::JMP));
  EXPECT_TRUE(isUnconditionalJump(Opcode::JMP));
  EXPECT_TRUE(isCall(Opcode::CALL));
  EXPECT_FALSE(isControlTransfer(Opcode::ADD));
}

Instruction randomInstruction(std::mt19937 &rng) {
  std::uniform_int_distribution<int> opDist(0, static_cast<int>(kNumOpcodes) -
                                                   1);
  std::uniform_int_distribution<int> kindDist(0, 3);
  std::uniform_int_distribution<int> regDist(0, 31);
  std::uniform_int_distribution<std::int64_t> immDist(-1'000'000, 1'000'000);
  std::uniform_int_distribution<int> nopsDist(0, 3);

  Instruction inst;
  inst.opcode = static_cast<Opcode>(opDist(rng));
  int nops = nopsDist(rng);
  for (int i = 0; i < nops; ++i) {
    switch (kindDist(rng)) {
    case 0:
      inst.operands.push_back(Operand::makeReg(static_cast<Reg>(regDist(rng))));
      break;
    case 1:
      inst.operands.push_back(Operand::makeImm(immDist(rng)));
      break;
    case 2: {
      MemRef m;
      m.base = static_cast<Reg>(regDist(rng) % 16);
      m.index = static_cast<Reg>(regDist(rng) % 16);
      m.scale = 8;
      m.disp = static_cast<std::int32_t>(immDist(rng) % 4096);
      inst.operands.push_back(Operand::makeMem(m));
      break;
    }
    default:
      inst.operands.push_back(Operand::makeLabel(immDist(rng)));
      break;
    }
  }
  return inst;
}

class EncodingRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(EncodingRoundTrip, RandomStreamsDecodeExactly) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()));
  MachineFunction fn;
  fn.name = "roundtrip";
  for (int i = 0; i < 200; ++i)
    fn.instructions.push_back(randomInstruction(rng));
  fn.layout(0);

  std::vector<std::uint8_t> bytes = encodeFunction(fn);
  DiagnosticEngine diags;
  auto decoded = decodeFunction(bytes, 0, diags);
  ASSERT_TRUE(decoded.has_value()) << diags.str();
  ASSERT_EQ(decoded->size(), fn.instructions.size());
  for (std::size_t i = 0; i < decoded->size(); ++i) {
    EXPECT_EQ((*decoded)[i].opcode, fn.instructions[i].opcode) << i;
    EXPECT_EQ((*decoded)[i].operands, fn.instructions[i].operands) << i;
    EXPECT_EQ((*decoded)[i].address, fn.instructions[i].address) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EncodingRoundTrip,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(Encoding, EncodedSizeMatchesDeclaredSize) {
  std::mt19937 rng(7);
  for (int i = 0; i < 100; ++i) {
    Instruction inst = randomInstruction(rng);
    std::vector<std::uint8_t> bytes;
    encodeInstruction(inst, bytes);
    EXPECT_EQ(bytes.size(), inst.encodedSize());
  }
}

TEST(Encoding, TruncatedBytesAreDiagnosed) {
  Instruction inst(Opcode::ADD, {Operand::makeReg(Reg::RAX),
                                 Operand::makeImm(42)});
  std::vector<std::uint8_t> bytes;
  encodeInstruction(inst, bytes);
  bytes.resize(bytes.size() - 3); // chop the immediate
  DiagnosticEngine diags;
  auto decoded = decodeFunction(bytes, 0, diags);
  EXPECT_FALSE(decoded.has_value());
  EXPECT_TRUE(diags.hasErrors());
}

TEST(Encoding, InvalidOpcodeDiagnosed) {
  std::vector<std::uint8_t> bytes = {0xFF, 0xFF, 0x00}; // opcode 0xFFFF
  DiagnosticEngine diags;
  std::size_t off = 0;
  auto inst = decodeInstruction(bytes, off, diags);
  EXPECT_FALSE(inst.has_value());
  EXPECT_TRUE(diags.containsMessage("invalid opcode"));
}

// --------------------------------------------------------------- objfile

TEST(ObjFile, SerializeParseRoundTrip) {
  MachineFunction fn;
  fn.name = "f";
  fn.instructions.emplace_back(
      Opcode::MOV,
      std::vector<Operand>{Operand::makeReg(Reg::RAX), Operand::makeImm(1)},
      3);
  fn.instructions.emplace_back(
      Opcode::ADDSD,
      std::vector<Operand>{Operand::makeReg(Reg::XMM0),
                           Operand::makeReg(Reg::XMM1)},
      4);
  fn.instructions.emplace_back(Opcode::RET, std::vector<Operand>{}, 5);
  fn.layout(0);

  objfile::MiraObject obj = objfile::buildObject({fn}, {"mc_print"});
  std::vector<std::uint8_t> bytes = obj.serialize();

  DiagnosticEngine diags;
  auto parsed = objfile::MiraObject::parse(bytes, diags);
  ASSERT_TRUE(parsed.has_value()) << diags.str();
  ASSERT_EQ(parsed->symbols.size(), 1u);
  EXPECT_EQ(parsed->symbols[0].name, "f");
  EXPECT_EQ(parsed->externSymbols.size(), 1u);
  EXPECT_EQ(parsed->text.size(), obj.text.size());
  // Line lookups recover the per-instruction lines.
  EXPECT_EQ(parsed->lineForAddress(fn.instructions[0].address), 3u);
  EXPECT_EQ(parsed->lineForAddress(fn.instructions[1].address), 4u);
  EXPECT_EQ(parsed->lineForAddress(fn.instructions[2].address), 5u);
}

TEST(ObjFile, BadMagicRejected) {
  std::vector<std::uint8_t> junk = {1, 2, 3, 4, 5, 6, 7, 8};
  DiagnosticEngine diags;
  EXPECT_FALSE(objfile::MiraObject::parse(junk, diags).has_value());
  EXPECT_TRUE(diags.containsMessage("bad magic"));
}

TEST(ObjFile, TruncatedTextRejected) {
  MachineFunction fn;
  fn.name = "f";
  fn.instructions.emplace_back(Opcode::RET, std::vector<Operand>{}, 1);
  fn.layout(0);
  objfile::MiraObject obj = objfile::buildObject({fn}, {});
  std::vector<std::uint8_t> bytes = obj.serialize();
  bytes.resize(bytes.size() / 2);
  DiagnosticEngine diags;
  EXPECT_FALSE(objfile::MiraObject::parse(bytes, diags).has_value());
  EXPECT_TRUE(diags.hasErrors());
}

TEST(ObjFile, SymbolRangeValidated) {
  MachineFunction fn;
  fn.name = "f";
  fn.instructions.emplace_back(Opcode::RET, std::vector<Operand>{}, 1);
  fn.layout(0);
  objfile::MiraObject obj = objfile::buildObject({fn}, {});
  obj.symbols[0].size += 1000; // corrupt
  std::vector<std::uint8_t> bytes = obj.serialize();
  DiagnosticEngine diags;
  EXPECT_FALSE(objfile::MiraObject::parse(bytes, diags).has_value());
  EXPECT_TRUE(diags.containsMessage("extends past"));
}

} // namespace
} // namespace mira::isa
