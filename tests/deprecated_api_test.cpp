// Deletion-safety pins for the [[deprecated]] v1 compatibility shims.
//
// PR 4 left `core::analyzeSource` and the v1 payload codec names
// (`serializeOutcomePayload`/`deserializeOutcomePayload`) in place as
// deprecated wrappers over the v2 artifact surface. Before a later PR
// deletes them, this suite pins exactly what the shims guarantee —
// byte-identical models, identical diagnostics, identical payload
// bytes, and identical failure behavior versus the v2 entry points —
// so the deletion commit can migrate any remaining caller and prove,
// by keeping these expectations against the v2 calls alone, that
// nothing observable changed.
#include <gtest/gtest.h>

#include <string>

#include "core/artifacts.h"
#include "core/mira.h"
#include "driver/batch.h"
#include "model/serialize.h"
#include "workloads/workloads.h"

// The whole point of this file is calling the deprecated surface.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

namespace mira {
namespace {

const char *kGoodSource = R"MC(
int accumulate(int n) {
  int s = 0;
  for (int i = 0; i < n; i++) {
    s = s + i * 3;
  }
  return s;
}
)MC";

const char *kBadSource = "int broken( { return ; }";

std::string modelBytes(const model::PerformanceModel &model) {
  std::string out;
  model::serializeModel(model, out);
  return out;
}

// ------------------------------------------------- analyzeSource shim

TEST(DeprecatedAnalyzeSource, ModelAndDiagnosticsMatchV2ByteForByte) {
  core::MiraOptions options;
  DiagnosticEngine v1Diags;
  const auto v1 =
      core::analyzeSource(kGoodSource, "shim.mc", options, v1Diags);
  ASSERT_TRUE(v1.has_value());
  ASSERT_TRUE(v1->program != nullptr);

  core::AnalysisSpec spec;
  spec.name = "shim.mc";
  spec.source = kGoodSource;
  spec.options = options;
  spec.artifacts =
      core::kArtifactModel | core::kArtifactDiagnostics | core::kArtifactProgram;
  DiagnosticEngine v2Diags;
  const core::Artifacts v2 = core::analyze(spec, v2Diags);
  ASSERT_TRUE(v2.ok);
  ASSERT_TRUE(v2.model != nullptr);

  EXPECT_EQ(modelBytes(v1->model), modelBytes(*v2.model));
  EXPECT_EQ(v1Diags.str(), v2Diags.str());
  EXPECT_EQ(v1Diags.errorCount(), v2Diags.errorCount());
  EXPECT_EQ(v1Diags.warningCount(), v2Diags.warningCount());

  // Both paths hand back a live compiled program for the same source.
  ASSERT_TRUE(v2.program != nullptr);
  EXPECT_FALSE(v2.program->isDeferred());
  EXPECT_TRUE(v2.program->get() != nullptr);
}

TEST(DeprecatedAnalyzeSource, FailureBehaviorMatchesV2) {
  core::MiraOptions options;
  DiagnosticEngine v1Diags;
  const auto v1 = core::analyzeSource(kBadSource, "bad.mc", options, v1Diags);
  EXPECT_FALSE(v1.has_value());
  EXPECT_TRUE(v1Diags.hasErrors());

  core::AnalysisSpec spec;
  spec.name = "bad.mc";
  spec.source = kBadSource;
  spec.options = options;
  DiagnosticEngine v2Diags;
  const core::Artifacts v2 = core::analyze(spec, v2Diags);
  EXPECT_FALSE(v2.ok);
  EXPECT_EQ(v1Diags.str(), v2Diags.str());
}

TEST(DeprecatedAnalyzeSource, MatchesV2OnARealWorkload) {
  // A paper workload exercises the full pipeline (classes, pragmas,
  // nested loops), not just a toy kernel.
  const std::string &source = workloads::fig5Source();
  core::MiraOptions options;
  DiagnosticEngine v1Diags, v2Diags;
  const auto v1 = core::analyzeSource(source, "@fig5", options, v1Diags);
  ASSERT_TRUE(v1.has_value());

  core::AnalysisSpec spec;
  spec.name = "@fig5";
  spec.source = source;
  spec.options = options;
  const core::Artifacts v2 = core::analyze(spec, v2Diags);
  ASSERT_TRUE(v2.ok);
  EXPECT_EQ(modelBytes(v1->model), modelBytes(*v2.model));
  EXPECT_EQ(v1Diags.str(), v2Diags.str());
}

// ------------------------------------------------ v1 payload codecs

TEST(DeprecatedPayloadCodec, SerializeMatchesV1NamedCodecByteForByte) {
  core::MiraOptions options;
  DiagnosticEngine diags;
  const auto analysis =
      core::analyzeSource(kGoodSource, "payload.mc", options, diags);
  ASSERT_TRUE(analysis.has_value());

  const core::AnalysisResult *result = &*analysis;
  const std::string viaShim =
      driver::serializeOutcomePayload(result, "warnings", "payload.mc");
  const std::string viaV1 =
      driver::serializeOutcomePayloadV1(result, "warnings", "payload.mc");
  EXPECT_EQ(viaShim, viaV1);

  // Failure payloads too (analysis == nullptr).
  EXPECT_EQ(driver::serializeOutcomePayload(nullptr, "errors", "bad.mc"),
            driver::serializeOutcomePayloadV1(nullptr, "errors", "bad.mc"));
}

TEST(DeprecatedPayloadCodec, DeserializeMatchesV1NamedCodec) {
  core::MiraOptions options;
  DiagnosticEngine diags;
  const auto analysis =
      core::analyzeSource(kGoodSource, "payload.mc", options, diags);
  ASSERT_TRUE(analysis.has_value());
  const std::string payload =
      driver::serializeOutcomePayloadV1(&*analysis, "diag text", "payload.mc");

  std::shared_ptr<const core::AnalysisResult> shimResult, v1Result;
  std::string shimDiag, v1Diag, shimProducer, v1Producer;
  ASSERT_TRUE(driver::deserializeOutcomePayload(payload, shimResult, shimDiag,
                                                shimProducer));
  ASSERT_TRUE(driver::deserializeOutcomePayloadV1(payload, v1Result, v1Diag,
                                                  v1Producer));
  ASSERT_TRUE(shimResult != nullptr);
  ASSERT_TRUE(v1Result != nullptr);
  EXPECT_EQ(modelBytes(shimResult->model), modelBytes(v1Result->model));
  EXPECT_EQ(shimDiag, v1Diag);
  EXPECT_EQ(shimProducer, v1Producer);

  // Both reject the same corruption the same way.
  const std::string truncated = payload.substr(0, payload.size() / 2);
  EXPECT_FALSE(driver::deserializeOutcomePayload(truncated, shimResult,
                                                 shimDiag, shimProducer));
  EXPECT_FALSE(driver::deserializeOutcomePayloadV1(truncated, v1Result,
                                                   v1Diag, v1Producer));
  const std::string padded = payload + "x";
  EXPECT_FALSE(driver::deserializeOutcomePayload(padded, shimResult, shimDiag,
                                                 shimProducer));
  EXPECT_FALSE(driver::deserializeOutcomePayloadV1(padded, v1Result, v1Diag,
                                                   v1Producer));
}

TEST(DeprecatedPayloadCodec, V1RoundTripPreservesTheV2ArtifactModel) {
  // The cross-generation pin: a model produced by the v2 artifact path,
  // pushed through the deprecated v1 codec, comes back byte-identical —
  // so v1 wire clients and leftover v1 disk entries stay faithful right
  // up until the shims are deleted.
  core::AnalysisSpec spec;
  spec.name = "roundtrip.mc";
  spec.source = kGoodSource;
  const core::Artifacts artifacts = core::analyze(spec);
  ASSERT_TRUE(artifacts.ok);
  ASSERT_TRUE(artifacts.resultV1 != nullptr);

  const std::string payload = driver::serializeOutcomePayload(
      artifacts.resultV1.get(), artifacts.diagnostics, spec.name);
  std::shared_ptr<const core::AnalysisResult> restored;
  std::string diagnostics, producer;
  ASSERT_TRUE(driver::deserializeOutcomePayload(payload, restored,
                                                diagnostics, producer));
  ASSERT_TRUE(restored != nullptr);
  EXPECT_EQ(modelBytes(restored->model), modelBytes(*artifacts.model));
  EXPECT_EQ(diagnostics, artifacts.diagnostics);
  EXPECT_EQ(producer, spec.name);
}

} // namespace
} // namespace mira

#pragma GCC diagnostic pop
