// End-to-end pipeline tests: source -> binary -> bridge -> model, checked
// against the simulator (the paper's validation methodology at unit
// scale). The headline invariant throughout: the statically evaluated
// model's FPI count matches the dynamically retired FPI count.
#include <gtest/gtest.h>

#include "core/artifacts.h"
#include "core/mira.h"
#include "workloads/workloads.h"

namespace mira::core {
namespace {

std::string workloadFig5() { return workloads::fig5Source(); }

using sim::Value;

/// Full static pipeline via the v2 artifact API, in the v1 result shape
/// (model + live program) these tests consume; null on failure.
std::shared_ptr<const AnalysisResult>
analyzeFull(const std::string &src, const std::string &name,
            const MiraOptions &options, DiagnosticEngine &diags) {
  AnalysisSpec spec;
  spec.name = name;
  spec.source = src;
  spec.options = options;
  spec.artifacts = kArtifactModel | kArtifactDiagnostics | kArtifactProgram;
  Artifacts artifacts = analyze(spec, diags);
  return artifacts.ok ? artifacts.resultV1 : nullptr;
}

std::shared_ptr<const AnalysisResult> analyzeOk(const std::string &src) {
  DiagnosticEngine diags;
  MiraOptions options;
  auto result = analyzeFull(src, "pipeline_test.mc", options, diags);
  EXPECT_TRUE(result != nullptr) << diags.str();
  return result;
}

double simFPI(const AnalysisResult &analysis, const std::string &fn,
              const std::vector<Value> &args) {
  auto r = simulate(*analysis.program, fn, args);
  EXPECT_TRUE(r.ok) << r.error;
  return r.fpiOf(fn);
}

TEST(Pipeline, BinaryAstHasFunctionsAndLines) {
  auto a = analyzeOk("double f(double x) {\n"
                     "  double y = x * 2.0;\n"
                     "  return y + 1.0;\n"
                     "}");
  const auto *fn = a->program->binaryAst.find("f");
  ASSERT_NE(fn, nullptr);
  EXPECT_FALSE(fn->instructions.empty());
  // Lines 2 and 3 must be represented in the disassembly.
  auto lines = fn->lineCounts();
  EXPECT_TRUE(lines.count(2));
  EXPECT_TRUE(lines.count(3));
}

TEST(Pipeline, BinaryLoopDiscovery) {
  auto a = analyzeOk("void f(double* v, int n) {\n"
                     "  for (int i = 0; i < n; i++) {\n"
                     "    v[i] = v[i] * 0.5;\n"
                     "  }\n"
                     "}");
  const auto *fn = a->program->binaryAst.find("f");
  ASSERT_NE(fn, nullptr);
  // Vectorization produces a main loop (step 2) and a remainder (step 1).
  ASSERT_GE(fn->loops.size(), 2u);
  const auto *bridge = a->program->bridge->of("f");
  ASSERT_NE(bridge, nullptr);
  auto binding = bridge->loopsAtLine(2);
  ASSERT_TRUE(binding.isVectorized());
  EXPECT_EQ(binding.mainLoop()->step, 2);
  EXPECT_EQ(binding.remainderLoop()->step, 1);
}

TEST(Pipeline, ScalarLoopStaysScalar) {
  // Integer address arithmetic in the body blocks vectorization (like
  // DGEMM's strided access).
  auto a = analyzeOk("void f(double* v, int n) {\n"
                     "  for (int i = 0; i < n; i++) {\n"
                     "    v[i * 2] = v[i * 2] + 1.0;\n"
                     "  }\n"
                     "}");
  const auto *bridge = a->program->bridge->of("f");
  auto binding = bridge->loopsAtLine(2);
  ASSERT_FALSE(binding.loops.empty());
  EXPECT_FALSE(binding.isVectorized());
}

// The core validation pattern: static model FPI == simulator FPI.
struct FpiCase {
  const char *name;
  const char *source;
  const char *function;
  std::vector<std::pair<const char *, std::int64_t>> params;
  std::vector<Value> args;
};

class StaticVsDynamic : public ::testing::TestWithParam<int> {};

TEST(Pipeline, SimpleVectorLoopFPIExact) {
  auto a = analyzeOk("void axpy(double* x, double* y, double alpha, int n) {\n"
                     "  for (int i = 0; i < n; i++) {\n"
                     "    y[i] = y[i] + alpha * x[i];\n"
                     "  }\n"
                     "}\n"
                     "double driver(int n) {\n"
                     "  double x[n];\n"
                     "  double y[n];\n"
                     "  for (int i = 0; i < n; i++) {\n"
                     "    x[i] = 1.0;\n"
                     "    y[i] = 2.0;\n"
                     "  }\n"
                     "  axpy(x, y, 3.0, n);\n"
                     "  return y[0];\n"
                     "}");
  for (std::int64_t n : {1, 2, 7, 64, 129}) {
    auto staticFPI = a->staticFPI("driver", {{"n", n}});
    ASSERT_TRUE(staticFPI.has_value());
    double dynamicFPI = simFPI(*a, "driver", {Value::ofInt(n)});
    EXPECT_DOUBLE_EQ(*staticFPI, dynamicFPI) << "n=" << n;
  }
}

TEST(Pipeline, TriangularNestFPIExact) {
  auto a = analyzeOk("double tri(int n) {\n"
                     "  double acc = 0.0;\n"
                     "  for (int i = 0; i < n; i++) {\n"
                     "    for (int j = i; j < n; j++) {\n"
                     "      acc = acc + 1.0;\n"
                     "    }\n"
                     "  }\n"
                     "  return acc;\n"
                     "}");
  for (std::int64_t n : {1, 3, 10, 31}) {
    auto staticFPI = a->staticFPI("tri", {{"n", n}});
    ASSERT_TRUE(staticFPI.has_value());
    double dynamicFPI = simFPI(*a, "tri", {Value::ofInt(n)});
    EXPECT_DOUBLE_EQ(*staticFPI, dynamicFPI) << "n=" << n;
  }
}

TEST(Pipeline, BranchInLoopUsesGuardedPolyhedron) {
  // Paper Fig. 4(b): affine guard shrinks the count; the model must be
  // exact, not approximate.
  auto a = analyzeOk("double f(int n) {\n"
                     "  double acc = 0.0;\n"
                     "  for (int i = 0; i < n; i++) {\n"
                     "    if (i >= 4) {\n"
                     "      acc = acc + 2.0;\n"
                     "    }\n"
                     "  }\n"
                     "  return acc;\n"
                     "}");
  for (std::int64_t n : {2, 4, 5, 20}) {
    auto staticFPI = a->staticFPI("f", {{"n", n}});
    ASSERT_TRUE(staticFPI.has_value());
    double dynamicFPI = simFPI(*a, "f", {Value::ofInt(n)});
    EXPECT_DOUBLE_EQ(*staticFPI, dynamicFPI) << "n=" << n;
  }
}

TEST(Pipeline, ModuloGuardComplementRule) {
  // Paper Fig. 4(c) / Listing 5: j % 4 != 0 handled by complement.
  auto a = analyzeOk("double f(int n) {\n"
                     "  double acc = 0.0;\n"
                     "  for (int j = 1; j <= n; j++) {\n"
                     "    if (j % 4 != 0) {\n"
                     "      acc = acc + 1.0;\n"
                     "    }\n"
                     "  }\n"
                     "  return acc;\n"
                     "}");
  for (std::int64_t n : {3, 4, 8, 17}) {
    auto staticFPI = a->staticFPI("f", {{"n", n}});
    ASSERT_TRUE(staticFPI.has_value());
    double dynamicFPI = simFPI(*a, "f", {Value::ofInt(n)});
    EXPECT_DOUBLE_EQ(*staticFPI, dynamicFPI) << "n=" << n;
  }
}

TEST(Pipeline, ElseBranchCountsComplement) {
  auto a = analyzeOk("double f(int n) {\n"
                     "  double acc = 0.0;\n"
                     "  for (int j = 0; j < n; j++) {\n"
                     "    if (j % 2 == 0) {\n"
                     "      acc = acc + 1.0;\n"
                     "    } else {\n"
                     "      acc = acc + 1.0 + 1.0 * j;\n"
                     "    }\n"
                     "  }\n"
                     "  return acc;\n"
                     "}");
  for (std::int64_t n : {1, 2, 9, 16}) {
    auto staticFPI = a->staticFPI("f", {{"n", n}});
    ASSERT_TRUE(staticFPI.has_value());
    double dynamicFPI = simFPI(*a, "f", {Value::ofInt(n)});
    EXPECT_DOUBLE_EQ(*staticFPI, dynamicFPI) << "n=" << n;
  }
}

TEST(Pipeline, FunctionCallsCombineLikeHandleFunctionCall) {
  // Calls inside loops multiply callee metrics by iteration count
  // (paper Sec. III-B5).
  auto a = analyzeOk("double work(double* v, int n) {\n"
                     "  double s = 0.0;\n"
                     "  for (int i = 0; i < n; i++) {\n"
                     "    s = s + v[i] * v[i];\n"
                     "  }\n"
                     "  return s;\n"
                     "}\n"
                     "double driver(int n, int reps) {\n"
                     "  double v[n];\n"
                     "  for (int i = 0; i < n; i++) {\n"
                     "    v[i] = 0.5;\n"
                     "  }\n"
                     "  double acc = 0.0;\n"
                     "  for (int r = 0; r < reps; r++) {\n"
                     "    acc = acc + work(v, n);\n"
                     "  }\n"
                     "  return acc;\n"
                     "}");
  auto staticFPI = a->staticFPI("driver", {{"n", 20}, {"reps", 7}});
  ASSERT_TRUE(staticFPI.has_value());
  double dynamicFPI =
      simFPI(*a, "driver", {Value::ofInt(20), Value::ofInt(7)});
  EXPECT_DOUBLE_EQ(*staticFPI, dynamicFPI);
}

TEST(Pipeline, MethodCallWithAnnotatedInnerLoop) {
  // The Fig. 5 pattern: annotation parameter surfaces in the model.
  auto a = analyzeOk(workloadFig5());
  const auto *fooModel = a->model.find("A::foo");
  ASSERT_NE(fooModel, nullptr);
  EXPECT_EQ(fooModel->modelName, "A_foo_2");
  auto params = a->model.requiredParameters("A::foo");
  EXPECT_TRUE(params.count("y")) << "annotated bound must be a parameter";
}

TEST(Pipeline, AnnotatedRatioBranch) {
  auto a = analyzeOk("double f(double* v, int n) {\n"
                     "  double acc = 0.0;\n"
                     "  for (int i = 0; i < n; i++) {\n"
                     "    #pragma @Annotation {ratio:25}\n"
                     "    if (v[i] > 0.5) {\n"
                     "      acc = acc + 1.0;\n"
                     "    }\n"
                     "  }\n"
                     "  return acc;\n"
                     "}");
  const auto *fn = a->model.find("f");
  ASSERT_NE(fn, nullptr);
  // 25% of n iterations contribute the branch body.
  auto counts = a->model.evaluate("f", {{"n", 100}});
  ASSERT_TRUE(counts.has_value());
  // FPI: condition compare is not FPI; body add -> about 25 adds. Loads
  // contribute SSE2 data movement, not FPI. The acc init is folded.
  EXPECT_NEAR(counts->fpInstructions, 25.0, 1.0);
}

TEST(Pipeline, SkipAnnotationRemovesScope) {
  auto a = analyzeOk("double f(int n) {\n"
                     "  double acc = 0.0;\n"
                     "  for (int i = 0; i < n; i++) {\n"
                     "    #pragma @Annotation {skip:yes}\n"
                     "    acc = acc + 1.0;\n"
                     "  }\n"
                     "  return acc;\n"
                     "}");
  auto counts = a->model.evaluate("f", {{"n", 1000}});
  ASSERT_TRUE(counts.has_value());
  // The skipped statement's FP add is absent from the model.
  EXPECT_LT(counts->fpInstructions, 10.0);
}

TEST(Pipeline, GeneratedPythonModelHasPaperShape) {
  auto a = analyzeOk(workloadFig5());
  std::string py = model::emitPython(a->model);
  EXPECT_NE(py.find("def A_foo_2("), std::string::npos);
  EXPECT_NE(py.find("def handle_function_call("), std::string::npos);
  EXPECT_NE(py.find("SSE2"), std::string::npos);
  // The annotated parameter appears in the signature.
  EXPECT_NE(py.find("y"), std::string::npos);
}

TEST(Pipeline, OptimizationChangesBinaryNotSemantics) {
  const char *src = "double f(int n) {\n"
                    "  double a[n];\n"
                    "  for (int i = 0; i < n; i++) {\n"
                    "    a[i] = 2.0 * 3.0;\n" // constant-folded
                    "  }\n"
                    "  return a[0];\n"
                    "}";
  DiagnosticEngine d1, d2;
  MiraOptions opt;
  opt.compile.compiler.optimize = true;
  auto optimized = analyzeFull(src, "t.mc", opt, d1);
  opt.compile.compiler.optimize = false;
  opt.compile.compiler.vectorize = false;
  auto plain = analyzeFull(src, "t.mc", opt, d2);
  ASSERT_TRUE(optimized && plain);
  auto r1 = simulate(*optimized->program, "f", {Value::ofInt(8)});
  auto r2 = simulate(*plain->program, "f", {Value::ofInt(8)});
  ASSERT_TRUE(r1.ok && r2.ok);
  EXPECT_DOUBLE_EQ(r1.returnValue.f, 6.0);
  EXPECT_DOUBLE_EQ(r2.returnValue.f, 6.0);
  // The optimized binary retires fewer instructions.
  EXPECT_LT(r1.total.totalInstructions, r2.total.totalInstructions);
}

TEST(Pipeline, ExternCallsAreTheResidualError) {
  // Static model cannot see into mc_print; the simulator charges it.
  auto a = analyzeOk("double f(int n) {\n"
                     "  double acc = 0.0;\n"
                     "  for (int i = 0; i < n; i++) {\n"
                     "    acc = acc + 1.0;\n"
                     "  }\n"
                     "  mc_print(acc);\n"
                     "  return acc;\n"
                     "}");
  auto staticFPI = a->staticFPI("f", {{"n", 1000}});
  ASSERT_TRUE(staticFPI.has_value());
  auto r = simulate(*a->program, "f", {Value::ofInt(1000)});
  ASSERT_TRUE(r.ok);
  double dynamicFPI = r.fpiOf("f");
  EXPECT_LT(*staticFPI, dynamicFPI); // missing library FPI
  EXPECT_LT(relativeError(*staticFPI, dynamicFPI), 0.02); // but small
  const auto *fn = a->model.find("f");
  ASSERT_NE(fn, nullptr);
  EXPECT_FALSE(fn->exact);
}

} // namespace
} // namespace mira::core
