// Model / arch / baseline / bridge unit tests.
#include <gtest/gtest.h>

#include "arch/arch.h"
#include "baseline/pbound.h"
#include "core/artifacts.h"
#include "core/mira.h"
#include "model/model.h"
#include "model/python_emitter.h"

namespace mira {
namespace {

/// Full static pipeline via the v2 artifact API, in the v1 result shape
/// (model + live program) these tests consume; null on failure.
std::shared_ptr<const core::AnalysisResult>
analyzeFull(const std::string &src, DiagnosticEngine &diags) {
  core::AnalysisSpec spec;
  spec.name = "t.mc";
  spec.source = src;
  spec.artifacts = core::kArtifactModel | core::kArtifactDiagnostics |
                   core::kArtifactProgram;
  core::Artifacts artifacts = core::analyze(spec, diags);
  return artifacts.ok ? artifacts.resultV1 : nullptr;
}

} // namespace
} // namespace mira

namespace mira::model {
namespace {

using symbolic::Expr;

// ---------------------------------------------------------------- model

PerformanceModel twoFunctionModel() {
  PerformanceModel m;
  FunctionModel leaf;
  leaf.sourceName = "leaf";
  leaf.modelName = "leaf_1";
  CountStep s;
  s.multiplier = Expr::param("n");
  s.opcodes[isa::Opcode::ADDSD] = 2;
  s.opcodes[isa::Opcode::MOVSD_RM] = 3;
  leaf.counts.push_back(s);
  m.functions.push_back(leaf);

  FunctionModel root;
  root.sourceName = "root";
  root.modelName = "root_1";
  CallStep call;
  call.multiplier = Expr::param("reps");
  call.callee = "leaf";
  call.argBindings["n"] = Expr::param("m") * Expr::intConst(2);
  call.line = 5;
  root.calls.push_back(call);
  m.functions.push_back(root);
  return m;
}

TEST(Model, EvaluatesCountSteps) {
  PerformanceModel m = twoFunctionModel();
  auto counts = m.evaluate("leaf", {{"n", 10}});
  ASSERT_TRUE(counts.has_value());
  EXPECT_DOUBLE_EQ(counts->fpInstructions, 20.0);
  EXPECT_DOUBLE_EQ(counts->totalInstructions, 50.0);
  EXPECT_DOUBLE_EQ(counts->opcodes.at(isa::Opcode::MOVSD_RM), 30.0);
}

TEST(Model, CallStepsBindArgumentsAndMultiply) {
  PerformanceModel m = twoFunctionModel();
  // root(reps=3, m=5): leaf evaluated at n = 10, times 3.
  auto counts = m.evaluate("root", {{"reps", 3}, {"m", 5}});
  ASSERT_TRUE(counts.has_value());
  EXPECT_DOUBLE_EQ(counts->fpInstructions, 3 * 2 * 10.0);
}

TEST(Model, MissingParameterReportsName) {
  PerformanceModel m = twoFunctionModel();
  std::string error;
  auto counts = m.evaluate("leaf", {}, &error);
  EXPECT_FALSE(counts.has_value());
  EXPECT_NE(error.find("n"), std::string::npos);
}

TEST(Model, RequiredParametersCrossCallBoundaries) {
  PerformanceModel m = twoFunctionModel();
  auto params = m.requiredParameters("root");
  EXPECT_TRUE(params.count("reps"));
  EXPECT_TRUE(params.count("m"));
  EXPECT_FALSE(params.count("n")) << "bound by the call step";
}

TEST(Model, CategoriesAggregation) {
  PerformanceModel m = twoFunctionModel();
  auto counts = m.evaluate("leaf", {{"n", 1}});
  auto categories = counts->categories(arch::haswellDescription());
  EXPECT_DOUBLE_EQ(
      categories[static_cast<std::size_t>(
          isa::InstrCategory::SSE2PackedArith)],
      2.0);
  EXPECT_DOUBLE_EQ(
      categories[static_cast<std::size_t>(
          isa::InstrCategory::SSE2DataMovement)],
      3.0);
}

TEST(PythonEmitter, ModuleContainsHelpersAndFunctions) {
  PerformanceModel m = twoFunctionModel();
  std::string py = emitPython(m);
  EXPECT_NE(py.find("def _bump("), std::string::npos);
  EXPECT_NE(py.find("def handle_function_call("), std::string::npos);
  EXPECT_NE(py.find("def leaf_1("), std::string::npos);
  EXPECT_NE(py.find("def root_1("), std::string::npos);
  EXPECT_NE(py.find("__main__"), std::string::npos);
}

TEST(PythonEmitter, OpcodeKeysWhenRequested) {
  PerformanceModel m = twoFunctionModel();
  PythonEmitOptions options;
  options.categoryKeys = false;
  std::string py = emitPython(m, options);
  EXPECT_NE(py.find("'addsd'"), std::string::npos);
}

} // namespace
} // namespace mira::model

namespace mira::arch {
namespace {

TEST(Arch, ParseRoundTrip) {
  const ArchDescription &ref = haswellDescription();
  DiagnosticEngine diags;
  auto parsed = ArchDescription::parse(ref.str(), diags);
  ASSERT_TRUE(parsed.has_value()) << diags.str();
  EXPECT_EQ(parsed->name, ref.name);
  EXPECT_EQ(parsed->cores, ref.cores);
  EXPECT_DOUBLE_EQ(parsed->clockGHz, ref.clockGHz);
}

TEST(Arch, CategoryOverride) {
  DiagnosticEngine diags;
  auto desc = ArchDescription::parse(
      "name = custom\n"
      "[categories]\n"
      "lea = Integer arithmetic instruction\n",
      diags);
  ASSERT_TRUE(desc.has_value()) << diags.str();
  EXPECT_EQ(desc->categoryOf(isa::Opcode::LEA),
            isa::InstrCategory::IntArith);
  // Unoverridden opcodes keep Mira's defaults.
  EXPECT_EQ(desc->categoryOf(isa::Opcode::ADDPD),
            isa::InstrCategory::SSE2PackedArith);
}

TEST(Arch, MalformedInputsDiagnosed) {
  DiagnosticEngine diags;
  EXPECT_FALSE(
      ArchDescription::parse("cores: not-a-kv-pair\n", diags).has_value());
  diags.clear();
  EXPECT_FALSE(ArchDescription::parse("[categories]\nnotanop = Misc "
                                      "Instruction\n",
                                      diags)
                   .has_value());
  EXPECT_TRUE(diags.containsMessage("unknown opcode"));
  diags.clear();
  EXPECT_FALSE(ArchDescription::parse("[categories]\nlea = Not A "
                                      "Category\n",
                                      diags)
                   .has_value());
}

TEST(Arch, ArithmeticIntensityAndRoofline) {
  isa::CategoryArray<double> counts{};
  counts[static_cast<std::size_t>(isa::InstrCategory::SSE2PackedArith)] =
      193;
  counts[static_cast<std::size_t>(isa::InstrCategory::SSE2DataMovement)] =
      367;
  // The paper's Sec. IV-D2 example: 1.93E8/3.67E8 = 0.53.
  EXPECT_NEAR(ArchDescription::arithmeticIntensity(counts), 0.526, 0.001);

  const ArchDescription &d = haswellDescription();
  EXPECT_DOUBLE_EQ(d.rooflineAttainable(1000.0), d.peakGFlops());
  EXPECT_LT(d.rooflineAttainable(0.1), d.peakGFlops());
}

TEST(Arch, PaperMachines) {
  EXPECT_EQ(haswellDescription().cores, 36);   // 2 x 18-core E5-2699v3
  EXPECT_EQ(nehalemDescription().cores, 8);    // 2 x 4-core E5620
  EXPECT_DOUBLE_EQ(haswellDescription().clockGHz, 2.3);
  EXPECT_DOUBLE_EQ(nehalemDescription().clockGHz, 2.4);
}

} // namespace
} // namespace mira::arch

namespace mira::baseline {
namespace {

TEST(Baseline, OverestimatesVectorizedFPI) {
  const char *src = "void axpy(double* x, double* y, int n) {\n"
                    "  for (int i = 0; i < n; i++) {\n"
                    "    y[i] = y[i] + 2.0 * x[i];\n"
                    "  }\n"
                    "}\n"
                    "double driver(int n) {\n"
                    "  double x[n];\n"
                    "  double y[n];\n"
                    "  for (int i = 0; i < n; i++) {\n"
                    "    x[i] = 1.0;\n"
                    "    y[i] = 1.0;\n"
                    "  }\n"
                    "  axpy(x, y, n);\n"
                    "  return y[0];\n"
                    "}";
  DiagnosticEngine diags;
  auto analysis = analyzeFull(src, diags);
  ASSERT_TRUE(analysis != nullptr) << diags.str();
  auto srcOnly = generateSourceOnlyModel(*analysis->program->unit,
                                         analysis->program->sema.callGraph,
                                         diags);

  std::int64_t n = 1000;
  auto r = core::simulate(*analysis->program, "driver",
                          {sim::Value::ofInt(n)});
  ASSERT_TRUE(r.ok);
  double dyn = r.fpiOf("driver");
  auto mira = analysis->model.evaluate("driver", {{"n", n}});
  auto pb = srcOnly.evaluate("driver", {{"n", n}});
  ASSERT_TRUE(mira && pb);
  // Mira tracks the vectorized binary; the source-only baseline counts
  // one scalar instruction per source FLOP and lands ~2x high.
  EXPECT_LT(core::relativeError(mira->fpInstructions, dyn), 0.01);
  EXPECT_GT(pb->fpInstructions, 1.8 * dyn);
}

TEST(Baseline, MatchesSourceOpCountsOnScalarCode) {
  const char *src = "double f(double a, double b) {\n"
                    "  return a * b + a / b;\n"
                    "}";
  DiagnosticEngine diags;
  auto analysis = analyzeFull(src, diags);
  ASSERT_TRUE(analysis != nullptr);
  auto srcOnly = generateSourceOnlyModel(*analysis->program->unit,
                                         analysis->program->sema.callGraph,
                                         diags);
  auto counts = srcOnly.evaluate("f", {});
  ASSERT_TRUE(counts.has_value());
  EXPECT_DOUBLE_EQ(counts->fpInstructions, 3.0); // mul + div + add
}

} // namespace
} // namespace mira::baseline

namespace mira::bridge {
namespace {

TEST(Bridge, LineQueriesAreConsistent) {
  const char *src = "double f(double* v, int n) {\n"
                    "  double s = 0.0;\n"
                    "  for (int i = 0; i < n; i++) {\n"
                    "    s = s + v[i] * 2.0;\n"
                    "  }\n"
                    "  return s;\n"
                    "}";
  DiagnosticEngine diags;
  auto analysis = analyzeFull(src, diags);
  ASSERT_TRUE(analysis != nullptr) << diags.str();
  const FunctionBridge *fb = analysis->program->bridge->of("f");
  ASSERT_NE(fb, nullptr);

  // The sum over {outside-loops + per-loop bodies + headers} of all lines
  // must equal the function's instruction count.
  const auto &bin = fb->binary();
  std::size_t total = bin.instructions.size();
  std::size_t accounted = 0;
  for (std::uint32_t line : fb->coveredLines()) {
    auto outside = fb->opcodesAtLine(line, nullptr);
    for (const auto &[op, n] : outside)
      accounted += n;
    for (const auto &loop : bin.loops) {
      auto inLoop = fb->opcodesAtLine(line, &loop);
      for (const auto &[op, n] : inLoop)
        accounted += n;
    }
  }
  for (const auto &loop : bin.loops)
    accounted += loop.headerInstrCount;
  EXPECT_EQ(accounted, total);
}

} // namespace
} // namespace mira::bridge
