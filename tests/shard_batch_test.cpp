// Multi-process shard tests: fork real `mira-cli batch --shard I/N`
// processes against one shared cache directory and pin the headline
// invariants of the corpus-manifest design (docs/MANIFESTS.md):
//
//   - the merged N-shard report is byte-identical to a single-process
//     run's report;
//   - the shared cache directory ends up byte-identical to the one a
//     single process produces, with zero corrupted entries;
//   - an incremental rerun after touching 1 of K entries performs
//     exactly 1 full compute (pinned through BatchStats in the report);
//   - `cache stats` on a nonexistent directory fails loudly (clear
//     message, nonzero exit) instead of showing an empty table.
//
// MIRA_CLI_PATH is injected by CMake ($<TARGET_FILE:mira-cli>), so the
// test always drives the binary it was built with.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "corpus/manifest.h"
#include "driver/batch.h"
#include "support/cache_store.h"

namespace mira {
namespace {

namespace fs = std::filesystem;

struct TempDir {
  fs::path path;
  explicit TempDir(const std::string &tag) {
    path = fs::temp_directory_path() /
           ("mira_shard_test_" + tag + "_" + std::to_string(::getpid()));
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
};

void writeFile(const fs::path &path, const std::string &bytes) {
  fs::create_directories(path.parent_path());
  std::ofstream out(path, std::ios::binary);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

std::string readFile(const fs::path &path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

/// A small corpus of distinct single-loop kernels; `variant` makes each
/// file's content (and therefore cache key) unique.
void writeCorpus(const fs::path &root, int count) {
  for (int i = 0; i < count; ++i) {
    char name[32];
    std::snprintf(name, sizeof(name), "kernel_%02d.mc", i);
    char source[256];
    std::snprintf(source, sizeof(source),
                  "int kernel_%02d(int n) {\n"
                  "  int s = %d;\n"
                  "  for (int i = 0; i < n; i++) {\n"
                  "    s = s + i * %d;\n"
                  "  }\n"
                  "  return s;\n"
                  "}\n",
                  i, i, i + 1);
    writeFile(root / name, source);
  }
}

/// Run one CLI invocation synchronously; returns its exit code.
/// stdout/stderr go to `logPath` so failures are debuggable.
int runCli(const std::vector<std::string> &args, const fs::path &logPath) {
  std::string command = MIRA_CLI_PATH;
  for (const std::string &arg : args)
    command += " '" + arg + "'";
  command += " > '" + logPath.string() + "' 2>&1";
  const int status = std::system(command.c_str());
  if (status == -1)
    return -1;
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

/// Fork+exec one CLI invocation; returns the child pid.
pid_t spawnCli(const std::vector<std::string> &args, const fs::path &logPath) {
  const pid_t pid = ::fork();
  if (pid != 0)
    return pid;
  // Child: route output to the log, then exec the CLI.
  std::FILE *log = std::freopen(logPath.string().c_str(), "w", stdout);
  (void)log;
  ::dup2(::fileno(stdout), ::fileno(stderr));
  std::vector<char *> argv;
  std::string cli = MIRA_CLI_PATH;
  argv.push_back(cli.data());
  std::vector<std::string> copies = args;
  for (std::string &arg : copies)
    argv.push_back(arg.data());
  argv.push_back(nullptr);
  ::execv(cli.c_str(), argv.data());
  std::_Exit(127); // exec failed
}

int waitFor(pid_t pid) {
  int status = 0;
  if (::waitpid(pid, &status, 0) != pid)
    return -1;
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

driver::BatchReport loadReport(const fs::path &path) {
  driver::BatchReport report;
  std::string error;
  EXPECT_TRUE(driver::deserializeBatchReport(readFile(path), report, error))
      << path << ": " << error;
  return report;
}

// ------------------------------------------------------------- tests

TEST(ShardBatch, MergedShardsAreByteIdenticalToOneProcessRun) {
  constexpr int kSources = 10;
  constexpr int kShards = 3;
  TempDir dir("merge");
  const fs::path corpus = dir.path / "corpus";
  writeCorpus(corpus, kSources);

  const fs::path manifest = dir.path / "corpus.manifest";
  ASSERT_EQ(runCli({"manifest", "build", corpus.string(), "--out",
                    manifest.string()},
                   dir.path / "build.log"),
            0)
      << readFile(dir.path / "build.log");

  // Reference: one process, its own cache directory and report.
  const fs::path oneCache = dir.path / "cache_one";
  const fs::path oneReport = dir.path / "one.report";
  ASSERT_EQ(runCli({"batch", "--manifest", manifest.string(), "--cache-dir",
                    oneCache.string(), "--report", oneReport.string()},
                   dir.path / "one.log"),
            0)
      << readFile(dir.path / "one.log");

  // N concurrent shard processes over one shared cache directory.
  const fs::path sharedCache = dir.path / "cache_shared";
  std::vector<pid_t> children;
  std::vector<fs::path> shardReports;
  for (int i = 1; i <= kShards; ++i) {
    const fs::path report =
        dir.path / ("shard_" + std::to_string(i) + ".report");
    shardReports.push_back(report);
    children.push_back(spawnCli(
        {"batch", "--manifest", manifest.string(), "--shard",
         std::to_string(i) + "/" + std::to_string(kShards), "--cache-dir",
         sharedCache.string(), "--report", report.string()},
        dir.path / ("shard_" + std::to_string(i) + ".log")));
  }
  for (std::size_t i = 0; i < children.size(); ++i)
    EXPECT_EQ(waitFor(children[i]), 0)
        << readFile(dir.path / ("shard_" + std::to_string(i + 1) + ".log"));

  // Merge through the CLI (the operator workflow), then compare bytes.
  const fs::path merged = dir.path / "merged.report";
  std::vector<std::string> mergeArgs = {"manifest", "merge", "--out",
                                        merged.string()};
  for (const fs::path &report : shardReports)
    mergeArgs.push_back(report.string());
  ASSERT_EQ(runCli(mergeArgs, dir.path / "merge.log"), 0)
      << readFile(dir.path / "merge.log");
  EXPECT_EQ(readFile(merged), readFile(oneReport))
      << "merged shard report differs from the single-process report";

  // The merged report covers every source exactly once, all ok, and
  // the summed stats equal the single-process run's.
  const driver::BatchReport mergedReport = loadReport(merged);
  ASSERT_EQ(mergedReport.entries.size(),
            static_cast<std::size_t>(kSources));
  for (const auto &entry : mergedReport.entries)
    EXPECT_TRUE(entry.ok) << entry.name;
  EXPECT_EQ(mergedReport.stats.requests,
            static_cast<std::size_t>(kSources));
  EXPECT_EQ(mergedReport.stats.diskStores,
            static_cast<std::size_t>(kSources));
  EXPECT_EQ(mergedReport.stats.failures, 0u);

  // The shared cache directory is byte-identical to the one-process
  // cache: same entry files, same contents.
  std::vector<std::string> oneEntries, sharedEntries;
  for (const auto &it : fs::directory_iterator(oneCache))
    oneEntries.push_back(it.path().filename().string());
  for (const auto &it : fs::directory_iterator(sharedCache))
    sharedEntries.push_back(it.path().filename().string());
  std::sort(oneEntries.begin(), oneEntries.end());
  std::sort(sharedEntries.begin(), sharedEntries.end());
  ASSERT_EQ(oneEntries, sharedEntries);
  for (const std::string &name : oneEntries)
    EXPECT_EQ(readFile(oneCache / name), readFile(sharedCache / name))
        << "cache entry " << name << " differs";

  // Zero corrupted entries: every key loads and validates.
  CacheStore store(sharedCache.string());
  const auto keys = store.keys();
  EXPECT_EQ(keys.size(), static_cast<std::size_t>(kSources));
  for (std::uint64_t key : keys)
    EXPECT_TRUE(store.load(key).has_value());
  EXPECT_EQ(store.stats().corrupt, 0u);
  EXPECT_EQ(store.stats().misses, 0u);
}

TEST(ShardBatch, IncrementalRerunRecomputesExactlyTheTouchedEntry) {
  constexpr int kSources = 6;
  TempDir dir("incremental");
  const fs::path corpus = dir.path / "corpus";
  writeCorpus(corpus, kSources);

  const fs::path m1 = dir.path / "m1.manifest";
  ASSERT_EQ(
      runCli({"manifest", "build", corpus.string(), "--out", m1.string()},
             dir.path / "b1.log"),
      0);
  const fs::path cache = dir.path / "cache";
  ASSERT_EQ(runCli({"batch", "--manifest", m1.string(), "--cache-dir",
                    cache.string()},
                   dir.path / "cold.log"),
            0);

  // Touch one file's *content* (mtime alone must not matter — the
  // manifest is content-addressed).
  std::ofstream touch(corpus / "kernel_03.mc", std::ios::app);
  touch << "\n";
  touch.close();

  const fs::path m2 = dir.path / "m2.manifest";
  ASSERT_EQ(
      runCli({"manifest", "build", corpus.string(), "--out", m2.string()},
             dir.path / "b2.log"),
      0);

  // `manifest diff` exits 1 on differences and reports exactly one —
  // and 2 (trouble, not "differs") when a manifest is unreadable, so
  // gating on exit 1 can't pass vacuously.
  EXPECT_EQ(runCli({"manifest", "diff", m1.string(), m2.string()},
                   dir.path / "diff.log"),
            1);
  EXPECT_EQ(runCli({"manifest", "diff", m1.string(),
                    (dir.path / "no_such.manifest").string()},
                   dir.path / "diff-missing.log"),
            2);
  const std::string diffLog = readFile(dir.path / "diff.log");
  EXPECT_NE(diffLog.find("changed   kernel_03.mc"), std::string::npos)
      << diffLog;
  EXPECT_NE(diffLog.find("manifest diff: 0 added, 1 changed, 0 removed"),
            std::string::npos)
      << diffLog;

  // Incremental --since run: exactly the touched entry, one compute.
  const fs::path report = dir.path / "incr.report";
  ASSERT_EQ(runCli({"batch", "--manifest", m2.string(), "--since",
                    m1.string(), "--cache-dir", cache.string(), "--report",
                    report.string()},
                   dir.path / "incr.log"),
            0);
  const driver::BatchReport incremental = loadReport(report);
  ASSERT_EQ(incremental.entries.size(), 1u);
  EXPECT_EQ(incremental.entries[0].name, "kernel_03.mc");
  EXPECT_TRUE(incremental.entries[0].ok);
  EXPECT_EQ(incremental.stats.requests, 1u);
  EXPECT_EQ(incremental.stats.cacheMisses, 1u); // THE one full compute
  EXPECT_EQ(incremental.stats.cacheHits, 0u);
  EXPECT_EQ(incremental.stats.diskStores, 1u);

  // A full warm rerun over the new manifest confirms through the cache:
  // K-1 disk hits, exactly 1 miss already recomputed above -> 0 misses.
  const fs::path warmReport = dir.path / "warm.report";
  ASSERT_EQ(runCli({"batch", "--manifest", m2.string(), "--cache-dir",
                    cache.string(), "--report", warmReport.string()},
                   dir.path / "warm.log"),
            0);
  const driver::BatchReport warm = loadReport(warmReport);
  EXPECT_EQ(warm.stats.requests, static_cast<std::size_t>(kSources));
  EXPECT_EQ(warm.stats.cacheHits, static_cast<std::size_t>(kSources));
  EXPECT_EQ(warm.stats.cacheMisses, 0u);
}

TEST(ShardBatch, ShardSelectionIsDisjointAndExhaustive) {
  // Pure planning check against a real manifest: every entry is
  // selected by exactly one shard, for several shard counts.
  TempDir dir("partition");
  const fs::path corpus = dir.path / "corpus";
  writeCorpus(corpus, 12);
  corpus::Manifest manifest;
  std::string error;
  ASSERT_TRUE(corpus::buildManifest(corpus.string(), manifest, error));

  const core::MiraOptions options;
  for (std::size_t count : {1u, 2u, 3u, 5u, 8u}) {
    std::size_t selected = 0;
    for (const auto &entry : manifest.entries) {
      const std::uint64_t key =
          driver::requestKeyFromContentHash(entry.contentHash, options);
      std::size_t owners = 0;
      for (std::size_t index = 0; index < count; ++index)
        if (driver::keyInShard(key, {index, count}))
          ++owners;
      EXPECT_EQ(owners, 1u) << entry.path << " count " << count;
      selected += owners;
    }
    EXPECT_EQ(selected, manifest.entries.size());
  }
}

TEST(ShardBatch, ShardReexecutionIsIdempotent) {
  // The property the fleet coordinator's lease re-issue leans on
  // (docs/FLEET.md): running the same shard again — on a fresh machine
  // after a crash, or against a cache the dead attempt half-populated —
  // changes nothing observable. Three runs of shard 1/2 pin both arms:
  //   run 1: cold cache A        -> the canonical report bytes;
  //   run 2: cold fresh cache B  -> byte-identical report (a re-issued
  //          lease on a different worker reproduces the original);
  //   run 3: cache A again       -> byte-identical cache dir, zero
  //          recomputes (a duplicate execution is a no-op).
  TempDir dir("idempotent");
  const fs::path corpus = dir.path / "corpus";
  writeCorpus(corpus, 8);
  const fs::path manifest = dir.path / "corpus.manifest";
  ASSERT_EQ(runCli({"manifest", "build", corpus.string(), "--out",
                    manifest.string()},
                   dir.path / "build.log"),
            0);

  const fs::path cacheA = dir.path / "cache_a";
  const fs::path cacheB = dir.path / "cache_b";
  const fs::path r1 = dir.path / "run1.report";
  const fs::path r2 = dir.path / "run2.report";
  const fs::path r3 = dir.path / "run3.report";
  const std::vector<std::string> base = {"batch", "--manifest",
                                         manifest.string(), "--shard", "1/2"};

  auto withArgs = [&base](std::initializer_list<std::string> extra) {
    std::vector<std::string> args = base;
    args.insert(args.end(), extra.begin(), extra.end());
    return args;
  };
  ASSERT_EQ(runCli(withArgs({"--cache-dir", cacheA.string(), "--report",
                             r1.string()}),
                   dir.path / "run1.log"),
            0);
  ASSERT_EQ(runCli(withArgs({"--cache-dir", cacheB.string(), "--report",
                             r2.string()}),
                   dir.path / "run2.log"),
            0);
  EXPECT_EQ(readFile(r1), readFile(r2))
      << "re-executing a shard on a fresh cache changed the report bytes";

  // Snapshot cache A, re-run against it, and diff: same files, same
  // bytes, and the report records pure cache hits.
  std::vector<std::string> before;
  for (const auto &it : fs::directory_iterator(cacheA))
    before.push_back(it.path().filename().string());
  std::sort(before.begin(), before.end());
  std::vector<std::string> beforeBytes;
  for (const std::string &name : before)
    beforeBytes.push_back(readFile(cacheA / name));

  ASSERT_EQ(runCli(withArgs({"--cache-dir", cacheA.string(), "--report",
                             r3.string()}),
                   dir.path / "run3.log"),
            0);
  const driver::BatchReport warm = loadReport(r3);
  EXPECT_EQ(warm.stats.cacheMisses, 0u)
      << "duplicate shard execution recomputed instead of hitting cache";
  EXPECT_EQ(warm.stats.cacheHits, warm.stats.requests);

  std::vector<std::string> after;
  for (const auto &it : fs::directory_iterator(cacheA))
    after.push_back(it.path().filename().string());
  std::sort(after.begin(), after.end());
  ASSERT_EQ(after, before);
  for (std::size_t i = 0; i < before.size(); ++i)
    EXPECT_EQ(readFile(cacheA / after[i]), beforeBytes[i])
        << "cache entry " << after[i] << " changed on re-execution";

  // The two reports' entry sets agree with the planner: every entry in
  // shard 1/2 and none from shard 2/2.
  const driver::BatchReport run1 = loadReport(r1);
  EXPECT_FALSE(run1.entries.empty());
  for (const auto &entry : run1.entries)
    EXPECT_TRUE(driver::keyInShard(entry.key, {0, 2})) << entry.name;
}

TEST(CacheCli, PruneKeepsEveryOptionConfigAndUnionsManifests) {
  TempDir dir("prune");
  const fs::path corpusA = dir.path / "corpus_a";
  const fs::path corpusB = dir.path / "corpus_b";
  writeCorpus(corpusA, 3);
  // Distinct contents for corpus B (offset the variant index).
  writeFile(corpusB / "other.mc",
            "int other(int n) {\n"
            "  int s = 7;\n"
            "  for (int i = 0; i < n; i++) {\n"
            "    s = s + 5;\n"
            "  }\n"
            "  return s;\n"
            "}\n");
  const fs::path mA = dir.path / "a.manifest";
  const fs::path mB = dir.path / "b.manifest";
  ASSERT_EQ(runCli({"manifest", "build", corpusA.string(), "--out",
                    mA.string()},
                   dir.path / "ba.log"),
            0);
  ASSERT_EQ(runCli({"manifest", "build", corpusB.string(), "--out",
                    mB.string()},
                   dir.path / "bb.log"),
            0);

  // One shared cache: corpus A under two option configurations plus
  // corpus B under the default — 3 + 3 + 1 = 7 entries.
  const fs::path cache = dir.path / "cache";
  ASSERT_EQ(runCli({"batch", "--manifest", mA.string(), "--cache-dir",
                    cache.string()},
                   dir.path / "r1.log"),
            0);
  ASSERT_EQ(runCli({"batch", "--manifest", mA.string(), "--no-optimize",
                    "--cache-dir", cache.string()},
                   dir.path / "r2.log"),
            0);
  ASSERT_EQ(runCli({"batch", "--manifest", mB.string(), "--cache-dir",
                    cache.string()},
                   dir.path / "r3.log"),
            0);
  ASSERT_EQ(CacheStore(cache.string()).entryCount(), 7u);

  // Prune keeping both manifests: nothing goes — including the
  // --no-optimize generation of corpus A (all option combos are kept).
  ASSERT_EQ(runCli({"cache", "prune", "--cache-dir", cache.string(),
                    "--manifest", mA.string(), "--manifest", mB.string()},
                   dir.path / "p1.log"),
            0);
  EXPECT_NE(readFile(dir.path / "p1.log").find("pruned 0 of 7 entries"),
            std::string::npos);
  EXPECT_EQ(CacheStore(cache.string()).entryCount(), 7u);

  // Prune keeping only corpus B: every corpus A entry (both option
  // configurations) is collected.
  ASSERT_EQ(runCli({"cache", "prune", "--cache-dir", cache.string(),
                    "--manifest", mB.string()},
                   dir.path / "p2.log"),
            0);
  EXPECT_NE(readFile(dir.path / "p2.log").find("pruned 6 of 7 entries"),
            std::string::npos);
  EXPECT_EQ(CacheStore(cache.string()).entryCount(), 1u);
}

TEST(CacheCli, StatsOnNonexistentDirectoryFailsLoudly) {
  TempDir dir("nostats");
  const fs::path missing = dir.path / "never_created";
  const fs::path log = dir.path / "stats.log";
  EXPECT_EQ(runCli({"cache", "stats", "--cache-dir", missing.string()}, log),
            1);
  const std::string output = readFile(log);
  EXPECT_NE(output.find("no cache directory"), std::string::npos) << output;
  // The inspection must not have conjured the directory into existence.
  EXPECT_FALSE(fs::exists(missing));
  // Same guard for clear and prune.
  EXPECT_EQ(runCli({"cache", "clear", "--cache-dir", missing.string()}, log),
            1);
  EXPECT_FALSE(fs::exists(missing));
}

} // namespace
} // namespace mira
