// Annotation workflow: what happens when static analysis hits its limits
// (the paper's Listings 3/6). Walks through: (1) a loop whose bounds come
// from memory — not statically countable; (2) the diagnosis Mira reports;
// (3) the '#pragma @Annotation' fix; (4) evaluating the completed model
// with user-supplied parameter values.
#include <cstdio>

#include "core/artifacts.h"

int main() {
  using namespace mira;

  // Without annotation: the inner bound is loaded from memory.
  const std::string unannotated = R"MC(
double irregular(double* v, int* limits, int n) {
  double acc = 0.0;
  for (int i = 0; i < n; i++) {
    for (int j = 0; j < limits[i]; j++) {
      acc = acc + v[j];
    }
  }
  return acc;
}
)MC";

  core::AnalysisSpec spec1;
  spec1.name = "unannotated.mc";
  spec1.source = unannotated;
  core::Artifacts a1 = core::analyze(spec1); // default mask: model + diags
  if (!a1.ok)
    return 1;
  std::puts("=== Without annotation ===");
  const auto *m1 = a1.model->find("irregular");
  std::printf("model exact: %s\n", m1->exact ? "yes" : "no");
  for (const auto &note : m1->notes)
    std::printf("  note: %s\n", note.c_str());
  std::puts("required parameters:");
  for (const std::string &p : a1.model->requiredParameters("irregular"))
    std::printf("  %s\n", p.c_str());

  // With annotation: the user asserts the average trip count.
  const std::string annotated = R"MC(
double irregular(double* v, int* limits, int n) {
  double acc = 0.0;
  for (int i = 0; i < n; i++) {
    #pragma @Annotation {lp_iters:avg_limit}
    for (int j = 0; j < limits[i]; j++) {
      acc = acc + v[j];
    }
  }
  return acc;
}

double driver(int n, int lim) {
  double v[1024];
  int limits[n];
  for (int k = 0; k < 1024; k++) {
    v[k] = 0.5;
  }
  for (int k = 0; k < n; k++) {
    limits[k] = lim;
  }
  double r = irregular(v, limits, n);
  return r;
}
)MC";

  core::AnalysisSpec spec2;
  spec2.name = "annotated.mc";
  spec2.source = annotated;
  spec2.artifacts = core::kArtifactModel | core::kArtifactDiagnostics |
                    core::kArtifactProgram; // program: simulated below
  core::Artifacts a2 = core::analyze(spec2);
  if (!a2.ok)
    return 1;
  std::puts("\n=== With #pragma @Annotation {lp_iters:avg_limit} ===");
  const auto *m2 = a2.model->find("irregular");
  for (const auto &note : m2->notes)
    std::printf("  note: %s\n", note.c_str());

  std::puts("\nmodel vs measured (uniform limits => annotation is exact):");
  for (std::int64_t lim : {4, 16, 64}) {
    std::int64_t n = 50;
    auto counts = a2.model->evaluate("irregular",
                                     {{"n", n}, {"avg_limit", lim}});
    auto r = core::simulate(*a2.program->get(), "driver",
                            {sim::Value::ofInt(n), sim::Value::ofInt(lim)});
    if (!counts || !r.ok) {
      std::fprintf(stderr, "evaluation failed\n");
      return 1;
    }
    std::printf("  lim=%-4lld model FPI %10.0f measured %10.0f "
                "error %.3f%%\n",
                static_cast<long long>(lim), counts->fpInstructions,
                r.fpiOf("irregular"),
                100 * core::relativeError(counts->fpInstructions,
                                          r.fpiOf("irregular")));
  }

  std::puts("\nThe same mechanism covers the paper's Listing 6: lp_init/"
            "lp_cond complete a polyhedral model, ratio:NN estimates "
            "branch frequency, skip:yes excludes a scope.");
  return 0;
}
