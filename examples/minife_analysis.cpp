// miniFE analysis: the paper's Table V / Table II / Sec. IV-D2 workflow
// as one application — per-function models across a call chain with a
// class member function, user-annotated sparse loop, category table and
// arithmetic-intensity prediction.
#include <cstdio>

#include "core/artifacts.h"
#include "workloads/workloads.h"

int main() {
  using namespace mira;

  core::AnalysisSpec spec;
  spec.name = "minife.mc";
  spec.source = workloads::minifeSource();
  spec.artifacts = core::kArtifactModel | core::kArtifactDiagnostics |
                   core::kArtifactProgram;
  core::Artifacts analysis = core::analyze(spec);
  if (!analysis.ok) {
    std::fprintf(stderr, "analysis failed:\n%s\n",
                 analysis.diagnostics.c_str());
    return 1;
  }
  auto program = analysis.program->get(); // live handle: no recompile

  int nx = 30, ny = 30, nz = 30, iters = 50;
  std::int64_t nrows = static_cast<std::int64_t>(nx) * ny * nz;
  model::Env env = {{"nx", nx},       {"ny", ny},     {"nz", nz},
                    {"max_iters", iters}, {"nrows", nrows}, {"nnz_row", 7},
                    {"n", nrows}};

  std::puts("=== Required model parameters of cg_solve ===");
  for (const std::string &p :
       analysis.model->requiredParameters("cg_solve"))
    std::printf("  %s%s\n", p.c_str(),
                env.count(p) ? "" : "   <-- UNBOUND");

  std::puts("\n=== Per-function FPI: model vs simulator ===");
  sim::SimOptions simOptions;
  simOptions.fastForward = true;
  auto r = core::simulate(*program, "cg_solve",
                          {sim::Value::ofInt(nx), sim::Value::ofInt(ny),
                           sim::Value::ofInt(nz), sim::Value::ofInt(iters)},
                          simOptions);
  if (!r.ok) {
    std::fprintf(stderr, "simulation failed: %s\n", r.error.c_str());
    return 1;
  }
  struct Row {
    const char *fn;
    bool perCall;
  };
  for (const Row &row : {Row{"waxpby", true}, Row{"dot", true},
                         Row{"MatVec::operator()", true},
                         Row{"build_matrix", true}, Row{"cg_solve", false}}) {
    auto counts = analysis.model->evaluate(row.fn, env);
    double dynamicFPI =
        row.perCall ? r.fpiPerCall(row.fn) : r.fpiOf(row.fn);
    if (!counts) {
      std::printf("%-22s model evaluation failed\n", row.fn);
      continue;
    }
    std::printf("%-22s model %14.0f measured %14.0f error %6.2f%%\n",
                row.fn, counts->fpInstructions, dynamicFPI,
                100 * core::relativeError(counts->fpInstructions,
                                          dynamicFPI));
  }

  std::puts("\n=== Annotations the model relied on ===");
  const auto *matvec = analysis.model->find("MatVec::operator()");
  if (matvec)
    for (const auto &note : matvec->notes)
      std::printf("  %s\n", note.c_str());

  std::puts("\n=== Prediction: arithmetic intensity of cg_solve ===");
  auto counts = analysis.model->evaluate("cg_solve", env);
  if (counts) {
    auto categories = counts->categories(arch::haswellDescription());
    double intensity =
        arch::ArchDescription::arithmeticIntensity(categories);
    std::printf("  SSE2 packed arith / SSE2 data movement = %.2f\n",
                intensity);
  }
  return 0;
}
