// STREAM analysis: the paper's Table III experiment as an application.
// Generates the STREAM model once, sweeps array sizes without re-running
// anything, compares a few points against simulated measurement, and shows
// the per-category breakdown an architecture description file provides.
#include <cstdio>

#include "core/artifacts.h"
#include "workloads/workloads.h"

int main() {
  using namespace mira;

  core::AnalysisSpec spec;
  spec.name = "stream.mc";
  spec.source = workloads::streamSource();
  spec.artifacts = core::kArtifactModel | core::kArtifactDiagnostics |
                   core::kArtifactProgram;
  core::Artifacts analysis = core::analyze(spec);
  if (!analysis.ok) {
    std::fprintf(stderr, "analysis failed:\n%s\n",
                 analysis.diagnostics.c_str());
    return 1;
  }
  auto program = analysis.program->get(); // live handle: no recompile

  std::puts("=== STREAM: parametric FPI sweep (model evaluated only) ===");
  std::printf("%12s | %14s\n", "N", "model FPI");
  for (std::int64_t n = 1'000'000; n <= 128'000'000; n *= 2) {
    auto fpi = analysis.staticFPI("stream_main", {{"n", n}, {"ntimes", 10}});
    std::printf("%12lld | %14.3e\n", static_cast<long long>(n),
                fpi.value_or(-1));
  }

  std::puts("\n=== Spot checks against the simulator (TAU/PAPI stand-in) ===");
  for (std::int64_t n : {100'000, 2'000'000}) {
    sim::SimOptions simOptions;
    simOptions.fastForward = true;
    auto r = core::simulate(*program, "stream_main",
                            {sim::Value::ofInt(n), sim::Value::ofInt(10)},
                            simOptions);
    auto fpi = analysis.staticFPI("stream_main", {{"n", n}, {"ntimes", 10}});
    std::printf("N=%-10lld model %14.0f measured %14.0f error %.4f%%\n",
                static_cast<long long>(n), fpi.value_or(-1),
                r.fpiOf("stream_main"),
                100 * core::relativeError(fpi.value_or(0),
                                          r.fpiOf("stream_main")));
  }

  std::puts("\n=== Per-category breakdown (haswell-arya.adf) at N=2M ===");
  auto counts = analysis.model->evaluate("stream_main",
                                         {{"n", 2'000'000}, {"ntimes", 10}});
  if (counts) {
    auto categories = counts->categories(arch::haswellDescription());
    for (std::size_t c = 0; c < isa::kNumCategories; ++c)
      if (categories[c] > 0)
        std::printf("%-55s %14.3e\n",
                    isa::categoryName(static_cast<isa::InstrCategory>(c))
                        .c_str(),
                    categories[c]);
    std::printf("%-55s %14.3e\n", "TOTAL", counts->totalInstructions);
    std::printf("%-55s %14.3e\n", "FPI (PAPI_FP_INS analogue)",
                counts->fpInstructions);
    std::printf("%-55s %14.3e\n", "FLOPs (packed SSE2 counts 2)",
                counts->flops);
  }
  return 0;
}
