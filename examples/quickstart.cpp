// Quickstart: analyze a small program, print its generated Python model,
// evaluate it for a few inputs, and cross-check against the simulator.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "core/artifacts.h"

int main() {
  using namespace mira;

  // A small kernel: scaled vector addition inside a driver.
  const std::string source = R"MC(
void axpy(double* x, double* y, double alpha, int n) {
  for (int i = 0; i < n; i++) {
    y[i] = y[i] + alpha * x[i];
  }
}

double driver(int n) {
  double x[n];
  double y[n];
  for (int i = 0; i < n; i++) {
    x[i] = 1.0;
    y[i] = 2.0;
  }
  axpy(x, y, 3.0, n);
  return y[0];
}
)MC";

  // 1. Static analysis through the artifact API: declare what you need
  //    (the model and the compiled program) and run the pipeline once.
  core::AnalysisSpec spec;
  spec.name = "quickstart.mc";
  spec.source = source;
  spec.artifacts = core::kArtifactModel | core::kArtifactDiagnostics |
                   core::kArtifactProgram;
  core::Artifacts analysis = core::analyze(spec);
  if (!analysis.ok) {
    std::fprintf(stderr, "analysis failed:\n%s\n",
                 analysis.diagnostics.c_str());
    return 1;
  }
  auto program = analysis.program->get(); // live handle: no recompile

  // 2. The generated Python model (the paper's Fig. 5 artifact).
  std::puts("=== Generated Python model ===");
  std::puts(model::emitPython(*analysis.model).c_str());

  // 3. Evaluate the parametric model for several inputs — no execution.
  std::puts("=== Static model evaluation vs simulated ground truth ===");
  std::printf("%8s | %14s | %14s | %8s\n", "n", "model FPI", "measured FPI",
              "error");
  for (std::int64_t n : {100, 1000, 10000, 1000000}) {
    auto staticFPI = analysis.staticFPI("driver", {{"n", n}});
    sim::SimOptions simOptions;
    simOptions.fastForward = n > 10000; // exact at small n, FF at large
    auto measured = core::simulate(*program, "driver",
                                   {sim::Value::ofInt(n)}, simOptions);
    if (!staticFPI || !measured.ok) {
      std::fprintf(stderr, "evaluation failed\n");
      return 1;
    }
    double dynamicFPI = measured.fpiOf("driver");
    std::printf("%8lld | %14.0f | %14.0f | %7.3f%%\n",
                static_cast<long long>(n), *staticFPI, dynamicFPI,
                100 * core::relativeError(*staticFPI, dynamicFPI));
  }

  // 4. What the binary-side analysis saw: the axpy loop was vectorized
  //    into a packed main loop and scalar remainder.
  const auto *bridge = program->bridge->of("axpy");
  auto binding = bridge->loopsAtLine(3);
  std::printf("\naxpy loop in the binary: %zu machine loop(s)%s\n",
              binding.loops.size(),
              binding.isVectorized()
                  ? " (vectorized: step-2 main + scalar remainder)"
                  : "");
  return 0;
}
