// Batch analysis: fan every embedded workload across the thread pool,
// then evaluate one headline metric per model — the scale-out entry
// point mirroring what `mira-cli batch` does programmatically.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/batch_analysis
#include <cstdio>

#include "driver/batch.h"
#include "workloads/workloads.h"

int main() {
  using namespace mira;

  // One request per fig-series workload, default options.
  std::vector<driver::AnalysisRequest> requests;
  for (const auto &workload : workloads::figSeriesWorkloads()) {
    driver::AnalysisRequest request;
    request.name = workload.name;
    request.source = *workload.source;
    requests.push_back(std::move(request));
  }

  driver::BatchOptions options;
  options.threads = 4;
  driver::BatchAnalyzer analyzer(options);
  auto outcomes = analyzer.run(requests);

  std::printf("%-10s | %-6s | %9s | functions\n", "workload", "status",
              "seconds");
  for (const auto &outcome : outcomes) {
    if (!outcome.ok) {
      std::printf("%-10s | FAILED\n%s\n", outcome.name.c_str(),
                  outcome.diagnostics.c_str());
      continue;
    }
    std::printf("%-10s | ok     | %9.4f | %zu\n", outcome.name.c_str(),
                outcome.seconds, outcome.analysis->model.functions.size());
  }
  const auto &stats = analyzer.stats();
  std::printf("\n%zu workloads in %.4f s on %zu threads\n", stats.requests,
              stats.wallSeconds, analyzer.threadCount());

  // Re-running the same batch is served entirely from the cache.
  analyzer.run(requests);
  std::printf("warm rerun: %.4f s, %zu cache hits\n",
              analyzer.stats().wallSeconds, analyzer.stats().cacheHits);

  // The STREAM model, evaluated like the paper's Table III column.
  for (const auto &outcome : outcomes) {
    if (outcome.name != "stream" || !outcome.ok)
      continue;
    model::Env env{{"n", 1000}, {"ntimes", 10}};
    std::string error;
    auto counts = outcome.analysis->model.evaluate("stream_main", env,
                                                   &error);
    if (counts)
      std::printf("stream_main(n=1000, ntimes=10): %.0f FP instructions\n",
                  counts->fpInstructions);
    else
      std::printf("stream_main evaluation failed: %s\n", error.c_str());
  }
  return 0;
}
