// Batch analysis: fan every embedded workload across the thread pool,
// then evaluate one headline metric per model — the scale-out entry
// point mirroring what `mira-cli batch` does programmatically.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/batch_analysis
#include <cstdio>

#include "driver/batch.h"
#include "workloads/workloads.h"

int main() {
  using namespace mira;

  // One spec per fig-series workload: model + diagnostics, the batch
  // default. Other artifacts (coverage, simulation, the program) ride
  // the same cache entries when asked for.
  std::vector<core::AnalysisSpec> specs;
  for (const auto &workload : workloads::figSeriesWorkloads()) {
    core::AnalysisSpec spec;
    spec.name = workload.name;
    spec.source = *workload.source;
    spec.artifacts = core::kArtifactModel | core::kArtifactDiagnostics;
    specs.push_back(std::move(spec));
  }

  driver::BatchOptions options;
  options.threads = 4;
  driver::BatchAnalyzer analyzer(options);
  auto results = analyzer.runArtifacts(specs);

  std::printf("%-10s | %-6s | %9s | functions\n", "workload", "status",
              "seconds");
  for (const auto &artifacts : results) {
    if (!artifacts.ok) {
      std::printf("%-10s | FAILED\n%s\n", artifacts.name.c_str(),
                  artifacts.diagnostics.c_str());
      continue;
    }
    std::printf("%-10s | ok     | %9.4f | %zu\n", artifacts.name.c_str(),
                artifacts.seconds, artifacts.model->functions.size());
  }
  const auto &stats = analyzer.stats();
  std::printf("\n%zu workloads in %.4f s on %zu threads\n", stats.requests,
              stats.wallSeconds, analyzer.threadCount());

  // Re-running the same batch is served entirely from the cache.
  analyzer.runArtifacts(specs);
  std::printf("warm rerun: %.4f s, %zu cache hits\n",
              analyzer.stats().wallSeconds, analyzer.stats().cacheHits);

  // The STREAM model, evaluated like the paper's Table III column.
  for (const auto &artifacts : results) {
    if (artifacts.name != "stream" || !artifacts.ok)
      continue;
    model::Env env{{"n", 1000}, {"ntimes", 10}};
    std::string error;
    auto counts = artifacts.model->evaluate("stream_main", env, &error);
    if (counts)
      std::printf("stream_main(n=1000, ntimes=10): %.0f FP instructions\n",
                  counts->fpInstructions);
    else
      std::printf("stream_main evaluation failed: %s\n", error.c_str());
  }
  return 0;
}
