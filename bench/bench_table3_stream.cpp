// Table III — FPI counts in the STREAM benchmark: TAU (simulator) vs Mira
// (static model), with relative error.
//
// Paper sizes are 2M/50M/100M array elements; the simulator substitute
// holds three double arrays in its flat memory, so we run 2M at the
// paper's size and scale the larger points to 10M/20M (documented in
// EXPERIMENTS.md). Shape criteria: static matches dynamic within the
// paper's <= 0.47% envelope and FPI scales linearly with N.
#include "bench_util.h"

namespace {

using namespace mira;
using sim::Value;

constexpr int kNTimes = 10;

void printTable3() {
  auto &a = bench::analyzeCached(workloads::streamSource(), "stream.mc");
  bench::printHeader(
      "Table III: FPI Counts in STREAM benchmark (ntimes = 10)\n"
      "'Sim' = dynamic ground truth (TAU/PAPI substitute), 'Mira' = "
      "static model");
  std::printf("%-12s | %12s | %12s | %10s\n", "Array size", "Sim", "Mira",
              "Error");
  for (std::int64_t n : {2'000'000, 10'000'000, 20'000'000}) {
    auto r = bench::simulateFF(a, "stream_main",
                               {Value::ofInt(n), Value::ofInt(kNTimes)});
    double dynamicFPI = r.fpiOf("stream_main");
    auto staticFPI =
        a.staticFPI("stream_main", {{"n", n}, {"ntimes", kNTimes}});
    std::printf("%-12s | %12s | %12s | %10s\n",
                bench::fmtCount(static_cast<double>(n)).c_str(),
                bench::fmtCount(dynamicFPI).c_str(),
                bench::fmtCount(staticFPI.value_or(-1)).c_str(),
                bench::fmtErr(staticFPI.value_or(0), dynamicFPI).c_str());
  }
  bench::printRule();
  std::puts("Paper reference: errors 0.47% / 0.19% / 0.24% at 2M/50M/100M.");
}

void BM_StaticModelEvaluation(benchmark::State &state) {
  auto &a = bench::analyzeCached(workloads::streamSource(), "stream.mc");
  std::int64_t n = state.range(0);
  for (auto _ : state) {
    auto fpi = a.staticFPI("stream_main", {{"n", n}, {"ntimes", kNTimes}});
    benchmark::DoNotOptimize(fpi);
  }
}
BENCHMARK(BM_StaticModelEvaluation)->Arg(2'000'000)->Arg(20'000'000);

void BM_DynamicSimulation(benchmark::State &state) {
  auto &a = bench::analyzeCached(workloads::streamSource(), "stream.mc");
  std::int64_t n = state.range(0);
  for (auto _ : state) {
    auto r = bench::simulateFF(a, "stream_main",
                               {Value::ofInt(n), Value::ofInt(kNTimes)});
    benchmark::DoNotOptimize(r.total.fpInstructions);
  }
}
BENCHMARK(BM_DynamicSimulation)->Arg(2'000'000)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  printTable3();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
