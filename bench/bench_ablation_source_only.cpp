// Ablation — source-only (PBound-style) vs source+binary (Mira) accuracy.
//
// The paper's central design argument (Sec. I, Sec. V): PBound "relies
// purely on source code analysis, and ignores the effects of compiler
// transformations, frequently resulting in bound estimates that are not
// realistically achievable". This bench quantifies that on our compiled
// binaries: the source-only model assumes one scalar FP instruction per
// source FP operation, so it overestimates retired FPI on vectorized
// kernels by ~2x, while Mira recovers the main/remainder loop structure
// from the binary and stays within a fraction of a percent.
#include "bench_util.h"

#include "baseline/pbound.h"

namespace {

using namespace mira;
using sim::Value;

void printAblation() {
  bench::printHeader(
      "Ablation: retired-FPI estimates, source-only baseline vs Mira\n"
      "(errors vs the simulator's dynamic ground truth)");
  std::printf("%-28s | %12s | %12s | %9s | %12s | %9s\n", "workload", "Sim",
              "Mira", "err", "source-only", "err");

  // STREAM (vectorized: the baseline misses packing).
  {
    auto &a = bench::analyzeCached(workloads::streamSource(), "stream.mc");
    DiagnosticEngine diags;
    auto srcOnly = baseline::generateSourceOnlyModel(
        *a.program->unit, a.program->sema.callGraph, diags);
    std::int64_t n = 1'000'000;
    auto r = bench::simulateFF(a, "stream_main",
                               {Value::ofInt(n), Value::ofInt(10)});
    double dyn = r.fpiOf("stream_main");
    model::Env env{{"n", n}, {"ntimes", 10}};
    auto mira = a.model.evaluate("stream_main", env);
    auto pb = srcOnly.evaluate("stream_main", env);
    std::printf("%-28s | %12s | %12s | %9s | %12s | %9s\n",
                "STREAM 1M x10 (vectorized)", bench::fmtCount(dyn).c_str(),
                bench::fmtCount(mira ? mira->fpInstructions : -1).c_str(),
                bench::fmtErr(mira ? mira->fpInstructions : 0, dyn).c_str(),
                bench::fmtCount(pb ? pb->fpInstructions : -1).c_str(),
                bench::fmtErr(pb ? pb->fpInstructions : 0, dyn).c_str());
  }

  // DGEMM (scalar kernel: both close, baseline still misses glue).
  {
    auto &a = bench::analyzeCached(workloads::dgemmSource(), "dgemm.mc");
    DiagnosticEngine diags;
    auto srcOnly = baseline::generateSourceOnlyModel(
        *a.program->unit, a.program->sema.callGraph, diags);
    std::int64_t n = 256;
    auto r = bench::simulateFF(a, "dgemm_main", {Value::ofInt(n)});
    double dyn = r.fpiOf("dgemm_main");
    model::Env env{{"n", n}, {"total", n * n}};
    auto mira = a.model.evaluate("dgemm_main", env);
    auto pb = srcOnly.evaluate("dgemm_main", env);
    std::printf("%-28s | %12s | %12s | %9s | %12s | %9s\n",
                "DGEMM 256 (scalar kernel)", bench::fmtCount(dyn).c_str(),
                bench::fmtCount(mira ? mira->fpInstructions : -1).c_str(),
                bench::fmtErr(mira ? mira->fpInstructions : 0, dyn).c_str(),
                bench::fmtCount(pb ? pb->fpInstructions : -1).c_str(),
                bench::fmtErr(pb ? pb->fpInstructions : 0, dyn).c_str());
  }

  // miniFE (mixed: vectorized waxpby/dot + scalar gather matvec).
  {
    auto &a = bench::analyzeCached(workloads::minifeSource(), "minife.mc");
    DiagnosticEngine diags;
    auto srcOnly = baseline::generateSourceOnlyModel(
        *a.program->unit, a.program->sema.callGraph, diags);
    int s = 30, iters = 100;
    auto r = bench::simulateFF(a, "cg_solve",
                               {Value::ofInt(s), Value::ofInt(s),
                                Value::ofInt(s), Value::ofInt(iters)});
    double dyn = r.fpiOf("cg_solve");
    model::Env env{{"nx", s},   {"ny", s},        {"nz", s},
                   {"max_iters", iters}, {"nrows", s * s * s},
                   {"nnz_row", 7},       {"n", s * s * s},
                   // The source-only baseline has no annotation support:
                   // the CSR loop bounds stay as parameters jbeg/jend.
                   {"jbeg", 0},          {"jend", 7}};
    auto mira = a.model.evaluate("cg_solve", env);
    auto pb = srcOnly.evaluate("cg_solve", env);
    std::printf("%-28s | %12s | %12s | %9s | %12s | %9s\n",
                "miniFE 30^3 cg_solve", bench::fmtCount(dyn).c_str(),
                bench::fmtCount(mira ? mira->fpInstructions : -1).c_str(),
                bench::fmtErr(mira ? mira->fpInstructions : 0, dyn).c_str(),
                bench::fmtCount(pb ? pb->fpInstructions : -1).c_str(),
                bench::fmtErr(pb ? pb->fpInstructions : 0, dyn).c_str());
  }
  bench::printRule();
  std::puts("Shape criterion: Mira's error stays within the paper's few-"
            "percent envelope; the source-only baseline misses compiler "
            "effects (SSE2 packing halves retired FPI) and lands ~2x high "
            "on vectorized kernels.");
}

void BM_SourceOnlyModelGeneration(benchmark::State &state) {
  auto &a = bench::analyzeCached(workloads::minifeSource(), "minife.mc");
  for (auto _ : state) {
    DiagnosticEngine diags;
    auto m = baseline::generateSourceOnlyModel(
        *a.program->unit, a.program->sema.callGraph, diags);
    benchmark::DoNotOptimize(m);
  }
}
BENCHMARK(BM_SourceOnlyModelGeneration);

} // namespace

int main(int argc, char **argv) {
  printAblation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
