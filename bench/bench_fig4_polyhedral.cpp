// Fig. 4 — Polyhedral models of the paper's listings.
//
// (a) the triangular double nest (Listing 2) has 14 lattice points;
// (b) the if constraint j > 4 (Listing 4) shrinks the polyhedron to 8;
// (c) the congruence j % 4 != 0 (Listing 5) breaks convexity and is
//     counted by the complement rule: 14 - 3 = 11;
// (d) min/max bounds (Listing 3) are not polyhedral: counting requires a
//     user annotation.
// Each count is verified three ways: symbolic counter, brute-force
// enumeration, and actual execution of the compiled listing.
#include "bench_util.h"

#include "polyhedral/counting.h"

namespace {

using namespace mira;
using namespace mira::polyhedral;

AffineExpr var(const std::string &n) { return AffineExpr::variable(n); }
AffineExpr cst(std::int64_t v) { return AffineExpr(v); }

IterationDomain listing2Domain() {
  IterationDomain d;
  d.levels.push_back(LoopLevel::make("i", cst(1), cst(4)));
  d.levels.push_back(LoopLevel::make("j", var("i") + cst(1), cst(6)));
  return d;
}

void printFig4() {
  auto &a = bench::analyzeCached(workloads::listingsSource(), "listings.mc");
  bench::printHeader(
      "Fig. 4: Polyhedral model for the double-nested loop listings\n"
      "columns: symbolic count / brute-force enumeration / executed");

  auto runListing = [&](const char *fn) {
    auto r = core::simulate(*a.program, fn, {});
    return r.ok ? r.returnValue.i : -1;
  };

  {
    IterationDomain d = listing2Domain();
    auto res = countIterations(d);
    auto brute = enumerateDomain(d, {});
    std::printf("(a) Listing 2 (triangular nest)        : %s / %lld / %lld\n",
                res.count.str().c_str(),
                static_cast<long long>(brute.value_or(-1)),
                static_cast<long long>(runListing("listing2")));
  }
  {
    IterationDomain d = listing2Domain();
    auto guard = AffineConstraint::make(var("j"), CmpRel::GT, cst(4));
    d = d.withGuard(guard[0]);
    auto res = countIterations(d);
    auto brute = enumerateDomain(d, {});
    std::printf("(b) Listing 4 (if j > 4 constraint)    : %s / %lld / %lld\n",
                res.count.str().c_str(),
                static_cast<long long>(brute.value_or(-1)),
                static_cast<long long>(runListing("listing4")));
  }
  {
    IterationDomain d =
        listing2Domain().withCongruence(Congruence{var("j"), 4, true});
    auto res = countIterations(d);
    auto brute = enumerateDomain(d, {});
    std::printf("(c) Listing 5 (if j %% 4 != 0, complement rule): %s / %lld "
                "/ %lld\n",
                res.count.str().c_str(),
                static_cast<long long>(brute.value_or(-1)),
                static_cast<long long>(runListing("listing5")));
    std::printf("    complement: count(loop)=14, count(j %% 4 == 0)=%s\n",
                countIterations(listing2Domain().withCongruence(
                                    Congruence{var("j"), 4, false}))
                    .count.str()
                    .c_str());
  }
  {
    // (d) Listing 3: min/max bounds — not convex, annotation required.
    const auto *fn = a.model.find("listing3");
    std::printf("(d) Listing 3 (min/max bounds)         : requires "
                "annotation -> parameters jlo/jhi\n");
    if (fn)
      for (const auto &note : fn->notes)
        std::printf("      note: %s\n", note.c_str());
  }

  // Parametric versions: the closed forms Mira embeds in models.
  bench::printHeader("Parametric closed forms (model expressions)");
  {
    IterationDomain d;
    d.levels.push_back(LoopLevel::make("i", cst(0), var("N") - cst(1)));
    d.levels.push_back(LoopLevel::make("j", cst(0), var("M") - cst(1)));
    std::printf("rectangle  N x M          -> %s\n",
                countIterations(d).count.str().c_str());
  }
  {
    IterationDomain d;
    d.levels.push_back(LoopLevel::make("i", cst(1), var("N")));
    d.levels.push_back(LoopLevel::make("j", var("i"), var("N")));
    std::printf("triangle   i<=j<=N        -> %s\n",
                countIterations(d).count.str().c_str());
  }
  {
    IterationDomain d;
    d.levels.push_back(LoopLevel::make("j", cst(1), var("N")));
    d = d.withCongruence(Congruence{var("j"), 4, true});
    std::printf("complement j %% 4 != 0     -> %s\n",
                countIterations(d).count.str().c_str());
  }
  bench::printRule();
}

void BM_SymbolicCounting(benchmark::State &state) {
  IterationDomain d = listing2Domain();
  for (auto _ : state) {
    auto res = countIterations(d);
    benchmark::DoNotOptimize(res.count);
  }
}
BENCHMARK(BM_SymbolicCounting);

void BM_ParametricClosedForm(benchmark::State &state) {
  IterationDomain d;
  d.levels.push_back(LoopLevel::make("i", cst(1), var("N")));
  d.levels.push_back(LoopLevel::make("j", var("i"), var("N")));
  for (auto _ : state) {
    auto res = countIterations(d);
    benchmark::DoNotOptimize(res.count);
  }
}
BENCHMARK(BM_ParametricClosedForm);

void BM_ClosedFormEvaluation(benchmark::State &state) {
  IterationDomain d;
  d.levels.push_back(LoopLevel::make("i", cst(1), var("N")));
  d.levels.push_back(LoopLevel::make("j", var("i"), var("N")));
  auto res = countIterations(d);
  symbolic::Env env{{"N", 1000000}};
  for (auto _ : state) {
    auto v = res.count.evaluate(env);
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_ClosedFormEvaluation);

} // namespace

int main(int argc, char **argv) {
  printFig4();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
