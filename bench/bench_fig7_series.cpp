// Fig. 7 — Validation of floating-point instruction counts (log-scale
// series across problem sizes): (a) STREAM, (b) DGEMM, (c)/(d) miniFE
// per-function counts at both problem sizes. Printed as the series the
// paper plots; shape criteria: static and dynamic series coincide and
// scale with the expected exponents.
#include "bench_util.h"

namespace {

using namespace mira;
using sim::Value;

void printSeries() {
  bench::printHeader("Fig. 7(a): STREAM FP instruction counts vs array size");
  {
    auto &a = bench::analyzeCached(workloads::streamSource(), "stream.mc");
    std::printf("%-12s | %12s | %12s\n", "N", "Sim", "Mira");
    for (std::int64_t n :
         {500'000, 1'000'000, 2'000'000, 5'000'000, 10'000'000, 20'000'000}) {
      auto r = bench::simulateFF(a, "stream_main",
                                 {Value::ofInt(n), Value::ofInt(10)});
      auto s = a.staticFPI("stream_main", {{"n", n}, {"ntimes", 10}});
      std::printf("%-12lld | %12s | %12s\n", static_cast<long long>(n),
                  bench::fmtCount(r.fpiOf("stream_main")).c_str(),
                  bench::fmtCount(s.value_or(-1)).c_str());
    }
  }

  bench::printHeader("Fig. 7(b): DGEMM FP instruction counts vs matrix size");
  {
    auto &a = bench::analyzeCached(workloads::dgemmSource(), "dgemm.mc");
    std::printf("%-12s | %12s | %12s\n", "n", "Sim", "Mira");
    for (std::int64_t n : {64, 128, 256, 512, 1024}) {
      auto r = bench::simulateFF(a, "dgemm_main", {Value::ofInt(n)});
      auto s = a.staticFPI("dgemm_main", {{"n", n}, {"total", n * n}});
      std::printf("%-12lld | %12s | %12s\n", static_cast<long long>(n),
                  bench::fmtCount(r.fpiOf("dgemm_main")).c_str(),
                  bench::fmtCount(s.value_or(-1)).c_str());
    }
  }

  bench::printHeader(
      "Fig. 7(c)/(d): miniFE per-function FPI at both problem sizes\n"
      "(waxpby and matvec operator() per call, cg_solve inclusive; 100 "
      "iterations)");
  {
    auto &a = bench::analyzeCached(workloads::minifeSource(), "minife.mc");
    struct Size {
      int nx, ny, nz;
      const char *label;
    };
    for (const Size &sz : {Size{30, 30, 30, "30x30x30"},
                           Size{35, 40, 45, "35x40x45"}}) {
      auto r = bench::simulateFF(a, "cg_solve",
                                 {Value::ofInt(sz.nx), Value::ofInt(sz.ny),
                                  Value::ofInt(sz.nz), Value::ofInt(100)});
      model::Env env = {{"nx", sz.nx},
                        {"ny", sz.ny},
                        {"nz", sz.nz},
                        {"max_iters", 100},
                        {"nrows",
                         static_cast<std::int64_t>(sz.nx) * sz.ny * sz.nz},
                        {"nnz_row", 7},
                        {"n",
                         static_cast<std::int64_t>(sz.nx) * sz.ny * sz.nz}};
      std::printf("%s:\n", sz.label);
      auto wax = a.model.evaluate("waxpby", env);
      std::printf("  %-20s | sim %12s | mira %12s\n", "waxpby",
                  bench::fmtCount(r.fpiPerCall("waxpby")).c_str(),
                  bench::fmtCount(wax ? wax->fpInstructions : -1).c_str());
      auto mv = a.model.evaluate("MatVec::operator()", env);
      std::printf("  %-20s | sim %12s | mira %12s\n", "matvec operator()",
                  bench::fmtCount(r.fpiPerCall("MatVec::operator()"))
                      .c_str(),
                  bench::fmtCount(mv ? mv->fpInstructions : -1).c_str());
      auto cg = a.model.evaluate("cg_solve", env);
      std::printf("  %-20s | sim %12s | mira %12s\n", "cg_solve",
                  bench::fmtCount(r.fpiOf("cg_solve")).c_str(),
                  bench::fmtCount(cg ? cg->fpInstructions : -1).c_str());
    }
  }
  bench::printRule();
}

void BM_SeriesPointStatic(benchmark::State &state) {
  auto &a = bench::analyzeCached(workloads::streamSource(), "stream.mc");
  for (auto _ : state) {
    auto s = a.staticFPI("stream_main",
                         {{"n", state.range(0)}, {"ntimes", 10}});
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_SeriesPointStatic)->Arg(500'000)->Arg(20'000'000);

} // namespace

int main(int argc, char **argv) {
  printSeries();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
