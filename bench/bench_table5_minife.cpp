// Table V — FPI counts in miniFE at problem sizes 30x30x30 and 35x40x45
// for the functions the paper reports: waxpby (per call), the sparse
// matrix-vector product MatVec::operator() (per call), and cg_solve
// (inclusive over the CG iteration loop, dominating the FP work).
//
// Error sources reproduce the paper's: the CSR row loop's trip count is
// data dependent, resolved by the {lp_iters:nnz_row} annotation with the
// user-supplied stencil size 7 — a slight overestimate on boundary rows,
// the same "discrepancies within some of the loops" the paper reports
// (errors up to 3.08%).
#include "bench_util.h"

namespace {

using namespace mira;
using sim::Value;

constexpr int kIters = 100; // fixed CG iteration budget

model::Env minifeEnv(int nx, int ny, int nz) {
  return {{"nx", nx},
          {"ny", ny},
          {"nz", nz},
          {"max_iters", kIters},
          {"nrows", static_cast<std::int64_t>(nx) * ny * nz},
          {"nnz_row", 7},
          {"n", static_cast<std::int64_t>(nx) * ny * nz}};
}

void printTable5() {
  auto &a = bench::analyzeCached(workloads::minifeSource(), "minife.mc");
  bench::printHeader(
      "Table V: FPI Counts in miniFE (100 CG iterations)\n"
      "waxpby / matvec operator(): per-call counts; cg_solve: inclusive");
  std::printf("%-10s | %-22s | %12s | %12s | %10s\n", "size", "Function",
              "Sim", "Mira", "Error");
  struct Size {
    int nx, ny, nz;
    const char *label;
  };
  for (const Size &s : {Size{30, 30, 30, "30x30x30"},
                        Size{35, 40, 45, "35x40x45"}}) {
    auto r = bench::simulateFF(a, "cg_solve",
                               {Value::ofInt(s.nx), Value::ofInt(s.ny),
                                Value::ofInt(s.nz), Value::ofInt(kIters)});
    model::Env env = minifeEnv(s.nx, s.ny, s.nz);

    struct Row {
      const char *fn;
      const char *label;
      bool perCall;
    };
    for (const Row &row :
         {Row{"waxpby", "waxpby", true},
          Row{"MatVec::operator()", "matvec operator()", true},
          Row{"cg_solve", "cg_solve", false}}) {
      double dynamicFPI =
          row.perCall ? r.fpiPerCall(row.fn) : r.fpiOf(row.fn);
      std::string error;
      auto counts = a.model.evaluate(row.fn, env, &error);
      double staticFPI = counts ? counts->fpInstructions : -1;
      std::printf("%-10s | %-22s | %12s | %12s | %10s\n", s.label,
                  row.label, bench::fmtCount(dynamicFPI).c_str(),
                  bench::fmtCount(staticFPI).c_str(),
                  bench::fmtErr(staticFPI, dynamicFPI).c_str());
    }
  }
  bench::printRule();
  std::puts("Paper reference: errors 0.011%-3.08%; growth comes from the "
            "data-dependent sparse row loop resolved by annotation.");
}

void BM_ModelEvaluation(benchmark::State &state) {
  auto &a = bench::analyzeCached(workloads::minifeSource(), "minife.mc");
  model::Env env = minifeEnv(35, 40, 45);
  for (auto _ : state) {
    auto counts = a.model.evaluate("cg_solve", env);
    benchmark::DoNotOptimize(counts);
  }
}
BENCHMARK(BM_ModelEvaluation);

void BM_DynamicSimulation30(benchmark::State &state) {
  auto &a = bench::analyzeCached(workloads::minifeSource(), "minife.mc");
  for (auto _ : state) {
    auto r = bench::simulateFF(a, "cg_solve",
                               {Value::ofInt(30), Value::ofInt(30),
                                Value::ofInt(30), Value::ofInt(10)});
    benchmark::DoNotOptimize(r.total.fpInstructions);
  }
}
BENCHMARK(BM_DynamicSimulation30)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  printTable5();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
