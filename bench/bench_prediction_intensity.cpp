// Sec. IV-D2 — Prediction: instruction-based arithmetic intensity of
// cg_solve from the Mira-generated metrics (paper computes 1.93E8/3.67E8
// = 0.53 on its 27-point miniFE), plus the Roofline consequences under
// both validation machines' architecture description files.
#include "bench_util.h"

namespace {

using namespace mira;

model::Env minifeEnv(int nx, int ny, int nz, int iters) {
  return {{"nx", nx},
          {"ny", ny},
          {"nz", nz},
          {"max_iters", iters},
          {"nrows", static_cast<std::int64_t>(nx) * ny * nz},
          {"nnz_row", 7}};
}

void printPrediction() {
  auto &a = bench::analyzeCached(workloads::minifeSource(), "minife.mc");
  model::Env env = minifeEnv(35, 40, 45, 200);
  auto counts = a.model.evaluate("cg_solve", env);
  if (!counts) {
    std::fprintf(stderr, "model evaluation failed\n");
    std::abort();
  }
  auto categories = counts->categories(arch::haswellDescription());
  double packed = categories[static_cast<std::size_t>(
      isa::InstrCategory::SSE2PackedArith)];
  double movement = categories[static_cast<std::size_t>(
      isa::InstrCategory::SSE2DataMovement)];
  double intensity = arch::ArchDescription::arithmeticIntensity(categories);

  bench::printHeader(
      "Sec. IV-D2 prediction: instruction-based arithmetic intensity of "
      "cg_solve");
  std::printf("SSE2 packed arithmetic instructions : %s\n",
              bench::fmtCount(packed).c_str());
  std::printf("SSE2 data movement instructions     : %s\n",
              bench::fmtCount(movement).c_str());
  std::printf("arithmetic intensity                : %.2f  (paper: "
              "1.93E8 / 3.67E8 = 0.53 on 27-pt miniFE)\n",
              intensity);

  bench::printHeader("Roofline consequences (architecture description "
                     "files of the two validation machines)");
  for (const arch::ArchDescription *d :
       {&arch::haswellDescription(), &arch::nehalemDescription()}) {
    // Convert instruction intensity to flops/byte: packed SSE2 = 2 flops
    // per instruction, data movement = 16 bytes per packed access (the
    // description file's vector width).
    double flopsPerByte =
        (counts->flops) /
        (movement * d->vectorWidthDoubles * 8.0 + 1e-9);
    std::printf("%-22s peak %7.1f GF/s, attainable at %.3f F/B: %7.1f "
                "GF/s (%s)\n",
                d->name.c_str(), d->peakGFlops(), flopsPerByte,
                d->rooflineAttainable(flopsPerByte),
                d->rooflineAttainable(flopsPerByte) < d->peakGFlops()
                    ? "memory bound"
                    : "compute bound");
  }
  bench::printRule();
}

void BM_IntensityDerivation(benchmark::State &state) {
  auto &a = bench::analyzeCached(workloads::minifeSource(), "minife.mc");
  model::Env env = minifeEnv(35, 40, 45, 200);
  for (auto _ : state) {
    auto counts = a.model.evaluate("cg_solve", env);
    auto categories = counts->categories(arch::haswellDescription());
    double intensity =
        arch::ArchDescription::arithmeticIntensity(categories);
    benchmark::DoNotOptimize(intensity);
  }
}
BENCHMARK(BM_IntensityDerivation);

void BM_ArchFileParsing(benchmark::State &state) {
  std::string text = arch::haswellDescription().str();
  for (auto _ : state) {
    DiagnosticEngine diags;
    auto desc = arch::ArchDescription::parse(text, diags);
    benchmark::DoNotOptimize(desc);
  }
}
BENCHMARK(BM_ArchFileParsing);

} // namespace

int main(int argc, char **argv) {
  printPrediction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
