// Table IV — FPI counts in the DGEMM benchmark (paper sizes 256/512/1024).
//
// The kernel is the classic triple loop; its strided B access keeps the
// inner loop scalar (like -O2 x86 without interchange), so FPI = 2n^3
// scalar SSE2 ops plus O(n^2) checksum work. Shape criteria: error in the
// paper's <= 0.05% band and cubic FPI scaling.
#include "bench_util.h"

namespace {

using namespace mira;
using sim::Value;

void printTable4() {
  auto &a = bench::analyzeCached(workloads::dgemmSource(), "dgemm.mc");
  bench::printHeader("Table IV: FPI Counts in DGEMM benchmark");
  std::printf("%-12s | %12s | %12s | %10s\n", "Matrix size", "Sim", "Mira",
              "Error");
  for (std::int64_t n : {256, 512, 1024}) {
    auto r = bench::simulateFF(a, "dgemm_main", {Value::ofInt(n)});
    double dynamicFPI = r.fpiOf("dgemm_main");
    // 'total' (= n*n) is a local the static analysis parameterizes; the
    // user supplies it at evaluation time (paper Sec. III-C).
    auto staticFPI =
        a.staticFPI("dgemm_main", {{"n", n}, {"total", n * n}});
    std::printf("%-12lld | %12s | %12s | %10s\n",
                static_cast<long long>(n),
                bench::fmtCount(dynamicFPI).c_str(),
                bench::fmtCount(staticFPI.value_or(-1)).c_str(),
                bench::fmtErr(staticFPI.value_or(0), dynamicFPI).c_str());
  }
  bench::printRule();
  std::puts(
      "Paper reference: errors 0.05% / 0.0012% / 0.0015% at 256/512/1024.");
}

void BM_StaticModelEvaluation(benchmark::State &state) {
  auto &a = bench::analyzeCached(workloads::dgemmSource(), "dgemm.mc");
  std::int64_t n = state.range(0);
  for (auto _ : state) {
    auto fpi = a.staticFPI("dgemm_main", {{"n", n}, {"total", n * n}});
    benchmark::DoNotOptimize(fpi);
  }
}
BENCHMARK(BM_StaticModelEvaluation)->Arg(256)->Arg(1024);

void BM_DynamicSimulation(benchmark::State &state) {
  auto &a = bench::analyzeCached(workloads::dgemmSource(), "dgemm.mc");
  std::int64_t n = state.range(0);
  for (auto _ : state) {
    auto r = bench::simulateFF(a, "dgemm_main", {Value::ofInt(n)});
    benchmark::DoNotOptimize(r.total.fpInstructions);
  }
}
BENCHMARK(BM_DynamicSimulation)->Arg(256)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  printTable4();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
