// Batch-analysis throughput: the driver subsystem's headline numbers.
//
// Fans the ten Table I coverage kernels plus the fig-series workloads
// across the BatchAnalyzer thread pool and reports (a) serial-vs-parallel
// wall-clock speedup, (b) the cache-hit fast path for repeated
// (source, options) pairs, (c) the persistent disk cache: a cold run
// that stores every entry followed by a fresh-analyzer warm run that
// must be pure disk hits, with hit/miss counts printed, (d) the
// serving daemon: per-request latency of the one-shot path (a fresh
// analyzer per request — the work every new CLI process repeats) vs.
// round-trips to one warm in-process daemon over its Unix socket,
// (e) manifest batches: the same corpus manifest executed locally vs.
// shipped to the daemon as one ManifestBatch request (cold compute and
// the warm fresh-process-vs-warm-daemon gap, with the two cold reports
// checked byte-identical), and
// (f) the coverage artifact ladder: a full cold compute vs. the
// recompile-on-demand path (what a schema-v1 cache entry degrades to)
// vs. the schema-v2 summary served from a warm disk cache vs. a warm
// daemon answering over the wire (BM_CoverageWarmDaemon). On
// multi-core hosts the 4-thread batch must beat serial by >1.5x; on
// single-core containers the table still prints and flags the
// configuration as unable to demonstrate parallelism.
#include "bench_util.h"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <functional>
#include <thread>

#include <unistd.h>

#include "corpus/manifest.h"
#include "driver/batch.h"
#include "server/client.h"
#include "server/server.h"
#include "symbolic/interner.h"
#include "workloads/coverage_suite.h"

namespace {

using namespace mira;

std::vector<driver::AnalysisRequest> batchRequests() {
  std::vector<driver::AnalysisRequest> requests;
  for (const auto &kernel : workloads::coverageSuite()) {
    driver::AnalysisRequest request;
    request.name = kernel.name;
    request.source = kernel.source;
    requests.push_back(std::move(request));
  }
  for (const auto &workload : workloads::figSeriesWorkloads()) {
    driver::AnalysisRequest request;
    request.name = workload.name;
    request.source = *workload.source;
    requests.push_back(std::move(request));
  }
  return requests;
}

/// Wall seconds for one cold batch (cache off so every request computes).
double timeBatch(const std::vector<driver::AnalysisRequest> &requests,
                 std::size_t threads) {
  driver::BatchOptions options;
  options.threads = threads;
  options.useCache = false;
  driver::BatchAnalyzer analyzer(options);
  auto outcomes = analyzer.run(requests);
  for (const auto &outcome : outcomes) {
    if (!outcome.ok) {
      std::fprintf(stderr, "batch analysis of %s failed:\n%s\n",
                   outcome.name.c_str(), outcome.diagnostics.c_str());
      std::abort();
    }
  }
  return analyzer.stats().wallSeconds;
}

void printSpeedupTable() {
  bench::printHeader(
      "Batch-analysis throughput: Table I kernels + fig-series workloads\n"
      "(cold cache; best of 3 batches per thread count)");
  auto requests = batchRequests();
  std::printf("%zu sources, %zu hardware threads\n\n", requests.size(),
              static_cast<std::size_t>(std::thread::hardware_concurrency()));

  double serialSeconds = 0;
  std::printf("%8s | %10s | %8s\n", "threads", "seconds", "speedup");
  for (std::size_t threads : {1, 2, 4, 8}) {
    double best = timeBatch(requests, threads);
    for (int repeat = 0; repeat < 2; ++repeat)
      best = std::min(best, timeBatch(requests, threads));
    if (threads == 1)
      serialSeconds = best;
    std::printf("%8zu | %10.4f | %7.2fx\n", threads, best,
                serialSeconds / best);
    if (threads == 4 && std::thread::hardware_concurrency() >= 4 &&
        serialSeconds / best < 1.5)
      std::printf("  WARNING: <1.5x speedup at 4 threads on a >=4-core "
                  "host\n");
  }
  if (std::thread::hardware_concurrency() < 4)
    std::printf("note: <4 hardware threads; parallel speedup cannot be "
                "demonstrated on this host\n");

  // Cache fast path: a warm identical batch should be pure hits.
  driver::BatchAnalyzer analyzer(driver::BatchOptions{4, true});
  analyzer.run(requests);
  double coldSeconds = analyzer.stats().wallSeconds;
  analyzer.run(requests);
  std::printf("\ncache: cold %.4f s -> warm %.4f s (%zu hits / %zu miss)\n",
              coldSeconds, analyzer.stats().wallSeconds,
              analyzer.stats().cacheHits, analyzer.stats().cacheMisses);

  // Disk-cache fast path: a fresh analyzer (stand-in for a fresh
  // process) over an unchanged corpus must be pure disk hits — the
  // cross-run reuse the persistent cache exists for.
  const std::string cacheDir =
      (std::filesystem::temp_directory_path() / "mira_bench_disk_cache")
          .string();
  std::filesystem::remove_all(cacheDir);
  driver::BatchOptions diskOptions;
  diskOptions.threads = 4;
  diskOptions.cacheDir = cacheDir;
  double diskCold = 0, diskWarm = 0;
  std::size_t warmHits = 0, warmMisses = 0, coldStores = 0;
  {
    driver::BatchAnalyzer cold(diskOptions);
    cold.run(requests);
    diskCold = cold.stats().wallSeconds;
    coldStores = cold.stats().diskStores;
  }
  {
    driver::BatchAnalyzer warm(diskOptions);
    warm.run(requests);
    diskWarm = warm.stats().wallSeconds;
    warmHits = warm.stats().diskHits;
    warmMisses = warm.stats().diskMisses;
  }
  std::printf("disk cache: cold run %.4f s (%zu stored) -> warm run %.4f s "
              "(%zu disk hits / %zu miss, %.1fx)\n",
              diskCold, coldStores, diskWarm, warmHits, warmMisses,
              diskWarm > 0 ? diskCold / diskWarm : 0.0);
  if (warmMisses != 0)
    std::printf("  WARNING: warm disk-cache run recomputed %zu sources\n",
                warmMisses);
  std::filesystem::remove_all(cacheDir);

  // Daemon phase: what one request costs through a cold process versus
  // a warm daemon. The one-shot column runs a fresh BatchAnalyzer per
  // request (every CLI invocation's in-process work, excluding exec and
  // runtime startup — the real CLI gap is larger); the daemon column is
  // a full socket round-trip against a server whose memory cache is hot
  // after the first request.
  const std::string socketPath =
      (std::filesystem::temp_directory_path() /
       ("mira_bench_daemon_" + std::to_string(::getpid()) + ".sock"))
          .string();
  server::ServerOptions serverOptions;
  serverOptions.socketPath = socketPath;
  serverOptions.threads = 2;
  server::AnalysisServer daemon(serverOptions);
  std::string error;
  if (!daemon.start(error)) {
    std::printf("daemon phase skipped: %s\n", error.c_str());
    bench::printRule();
    return;
  }
  std::thread serveThread([&daemon] { daemon.serve(); });
  server::Client client;
  if (!client.connect(socketPath)) {
    std::printf("daemon phase skipped: %s\n", client.lastError().c_str());
    daemon.requestStop();
    serveThread.join();
    bench::printRule();
    return;
  }

  constexpr int kRepeats = 20;
  const std::string &daemonSource = workloads::minifeSource();
  auto now = [] { return std::chrono::steady_clock::now(); };
  auto elapsed = [](std::chrono::steady_clock::time_point start) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };

  double oneShotSeconds = 0;
  for (int i = 0; i < kRepeats; ++i) {
    driver::BatchOptions oneShot;
    oneShot.threads = 1;
    auto start = now();
    driver::BatchAnalyzer fresh(oneShot); // a "new process" every time
    driver::AnalysisRequest request;
    request.name = "@minife";
    request.source = daemonSource;
    if (!fresh.analyzeSingle(request).ok)
      std::abort();
    oneShotSeconds += elapsed(start);
  }

  double daemonSeconds = 0;
  std::size_t daemonHits = 0;
  for (int i = 0; i < kRepeats; ++i) {
    server::ClientOutcome outcome;
    auto start = now();
    if (!client.analyze("@minife", daemonSource, core::MiraOptions(),
                        outcome) ||
        !outcome.ok)
      std::abort();
    daemonSeconds += elapsed(start);
    if (outcome.cacheHit)
      ++daemonHits;
  }
  if (!client.shutdownServer())
    daemon.requestStop(); // a failed wire shutdown must not hang join()
  serveThread.join();

  std::printf("\ndaemon: one-shot %.4f ms/req -> warm daemon %.4f ms/req "
              "(%.1fx, %zu/%d cache hits; exec+startup excluded from "
              "one-shot)\n",
              1e3 * oneShotSeconds / kRepeats, 1e3 * daemonSeconds / kRepeats,
              daemonSeconds > 0 ? oneShotSeconds / daemonSeconds : 0.0,
              daemonHits, kRepeats);
  if (daemonHits + 1 < kRepeats)
    std::printf("  WARNING: warm daemon recomputed %d requests\n",
                static_cast<int>(kRepeats - 1 - daemonHits));
  bench::printRule();
}

/// Write the bench corpus as .mc files under `dir` and build its
/// manifest; false (with a message on stdout) when the host refuses.
bool writeBenchCorpus(const std::filesystem::path &dir,
                      corpus::Manifest &manifest) {
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  std::filesystem::create_directories(dir, ec);
  auto requests = batchRequests();
  for (std::size_t i = 0; i < requests.size(); ++i) {
    char name[32];
    std::snprintf(name, sizeof name, "src_%02zu.mc", i);
    std::ofstream out(dir / name, std::ios::binary);
    out << requests[i].source;
    if (!out) {
      std::printf("manifest phase skipped: cannot write %s\n", name);
      return false;
    }
  }
  std::string error;
  if (!corpus::buildManifest(dir.string(), manifest, error)) {
    std::printf("manifest phase skipped: %s\n", error.c_str());
    return false;
  }
  return true;
}

/// Manifest-batch phase: the same corpus manifest executed by a local
/// BatchAnalyzer vs. shipped to the daemon as one ManifestBatch
/// request. Cold runs use separate empty cache directories and their
/// reports must be byte-identical (the differential invariant
/// tests/fault_injection_test.cpp pins); the warm comparison is the
/// deployment question — a fresh process paying disk hits vs. a warm
/// daemon answering from memory.
void printManifestBatchPhase() {
  bench::printHeader(
      "Manifest batch: one corpus request, local vs. daemon\n"
      "(same manifest and options; cold reports checked byte-identical)");
  const std::filesystem::path corpusDir =
      std::filesystem::temp_directory_path() / "mira_bench_manifest_corpus";
  corpus::Manifest manifest;
  if (!writeBenchCorpus(corpusDir, manifest)) {
    bench::printRule();
    return;
  }
  const std::string manifestBytes = corpus::serializeManifest(manifest);
  const core::MiraOptions options;
  const driver::ManifestSelection selection =
      driver::selectManifestEntries(manifest, nullptr, options,
                                    driver::ShardSpec{});

  auto now = [] { return std::chrono::steady_clock::now(); };
  auto elapsed = [](std::chrono::steady_clock::time_point start) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };

  // One local manifest run, exactly as `mira-cli batch --manifest`
  // builds it: selection order, manifest-path names, report keys from
  // the manifest content hashes. A fresh analyzer per call stands in
  // for a fresh process.
  auto runLocal = [&](const std::string &cacheDir) {
    std::vector<driver::AnalysisRequest> local;
    local.reserve(selection.entries.size());
    for (const auto &entry : selection.entries) {
      driver::AnalysisRequest request;
      request.name = entry.path;
      std::ifstream in(corpusDir / entry.path, std::ios::binary);
      request.source.assign(std::istreambuf_iterator<char>(in), {});
      local.push_back(std::move(request));
    }
    driver::BatchOptions batchOptions;
    batchOptions.threads = 2;
    batchOptions.cacheDir = cacheDir;
    driver::BatchAnalyzer analyzer(batchOptions);
    auto outcomes = analyzer.run(local);
    driver::BatchReport report;
    report.stats = analyzer.stats();
    report.entries.reserve(outcomes.size());
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
      if (!outcomes[i].ok)
        std::abort();
      report.entries.push_back(
          {outcomes[i].name,
           driver::requestKeyFromContentHash(selection.entries[i].contentHash,
                                             options),
           outcomes[i].ok});
    }
    return driver::serializeBatchReport(report);
  };

  const std::string localCache =
      (std::filesystem::temp_directory_path() / "mira_bench_manifest_local")
          .string();
  std::filesystem::remove_all(localCache);
  auto start = now();
  const std::string localReport = runLocal(localCache);
  const double localColdSeconds = elapsed(start);

  const std::string daemonCache =
      (std::filesystem::temp_directory_path() / "mira_bench_manifest_daemon")
          .string();
  std::filesystem::remove_all(daemonCache);
  const std::string socketPath =
      (std::filesystem::temp_directory_path() /
       ("mira_bench_manifest_" + std::to_string(::getpid()) + ".sock"))
          .string();
  server::ServerOptions serverOptions;
  serverOptions.socketPath = socketPath;
  serverOptions.threads = 2;
  serverOptions.cacheDir = daemonCache;
  server::AnalysisServer daemon(serverOptions);
  std::string error;
  if (!daemon.start(error)) {
    std::printf("daemon side skipped: %s\n", error.c_str());
    std::filesystem::remove_all(localCache);
    bench::printRule();
    return;
  }
  std::thread serveThread([&daemon] { daemon.serve(); });
  server::Client client;
  if (!client.connect(socketPath)) {
    std::printf("daemon side skipped: %s\n", client.lastError().c_str());
    daemon.requestStop();
    serveThread.join();
    std::filesystem::remove_all(localCache);
    bench::printRule();
    return;
  }

  std::string daemonColdReport;
  start = now();
  if (!client.manifestBatch(manifestBytes, "", "", driver::ShardSpec{},
                            options, nullptr, daemonColdReport)) {
    std::printf("daemon manifest batch failed: %s\n",
                client.lastError().c_str());
    std::abort();
  }
  const double daemonColdSeconds = elapsed(start);

  // Warm gap: a fresh local analyzer pays disk hits per corpus pass;
  // the daemon answers the identical request from its memory cache.
  constexpr int kCorpusRepeats = 5;
  double localWarmSeconds = 0;
  for (int i = 0; i < kCorpusRepeats; ++i) {
    start = now();
    benchmark::DoNotOptimize(runLocal(localCache).size());
    localWarmSeconds += elapsed(start);
  }
  double daemonWarmSeconds = 0;
  std::string daemonWarmReport;
  for (int i = 0; i < kCorpusRepeats; ++i) {
    start = now();
    if (!client.manifestBatch(manifestBytes, "", "", driver::ShardSpec{},
                              options, nullptr, daemonWarmReport))
      std::abort();
    daemonWarmSeconds += elapsed(start);
  }
  if (!client.shutdownServer())
    daemon.requestStop();
  serveThread.join();

  const bool identical = daemonColdReport == localReport;
  std::printf("%zu sources, one request per corpus:\n",
              selection.entries.size());
  std::printf("  cold: local %.4f s vs daemon %.4f s\n", localColdSeconds,
              daemonColdSeconds);
  std::printf("  warm: fresh-process local (disk hits) %.4f ms vs warm "
              "daemon (memory hits) %.4f ms (%.1fx)\n",
              1e3 * localWarmSeconds / kCorpusRepeats,
              1e3 * daemonWarmSeconds / kCorpusRepeats,
              daemonWarmSeconds > 0 ? localWarmSeconds / daemonWarmSeconds
                                    : 0.0);
  if (std::thread::hardware_concurrency() < 4)
    std::printf("note: <4 hardware threads; cold local and daemon compute "
                "the same work at the same width here\n");
  if (identical)
    std::printf("cold reports: byte-identical (%zu bytes)\n",
                localReport.size());
  else
    std::printf("  WARNING: cold local and daemon reports differ "
                "(%zu vs %zu bytes)\n",
                localReport.size(), daemonColdReport.size());
  std::filesystem::remove_all(corpusDir);
  std::filesystem::remove_all(localCache);
  std::filesystem::remove_all(daemonCache);
  bench::printRule();
}

/// Hash-consing phase: what the expression arena does to the cold
/// compute path that caching cannot hide. Reports the cold batch wall
/// clock alongside the process-wide intern counter deltas for that run
/// (greppable `mira_intern_*` lines — the same names the daemon's
/// metrics render exports), and a directly measured improvement: the
/// cached-key/hash equality the interner provides vs. the recursive
/// string serialization `Expr::equals` used before it.
void printInternPhase() {
  bench::printHeader(
      "Hash-consed expressions: cold-phase cost + intern counters\n"
      "(cache off; counters are process-wide deltas over one batch)");
  auto requests = batchRequests();

  const symbolic::InternStats before = symbolic::ExprInterner::globalStats();
  double best = timeBatch(requests, 1);
  for (int repeat = 0; repeat < 2; ++repeat)
    best = std::min(best, timeBatch(requests, 1));
  const symbolic::InternStats after = symbolic::ExprInterner::globalStats();

  const std::uint64_t hits = after.hits - before.hits;
  const std::uint64_t misses = after.misses - before.misses;
  std::printf("cold batch (1 thread, best of 3): %.4f s for %zu sources\n",
              best, requests.size());
  std::printf("mira_intern_hits %llu\n",
              static_cast<unsigned long long>(hits));
  std::printf("mira_intern_misses %llu\n",
              static_cast<unsigned long long>(misses));
  std::printf("mira_intern_nodes %llu\n",
              static_cast<unsigned long long>(after.nodes));
  if (hits + misses > 0)
    std::printf("intern hit rate: %.1f%% (every hit is one node allocation "
                "+ key build avoided)\n",
                100.0 * static_cast<double>(hits) /
                    static_cast<double>(hits + misses));

  // The measured improvement: equality on a canonicalization-sized
  // expression, old way (serialize both subtrees to strings, compare)
  // vs. the interner's way (pointer identity / cached hash).
  std::function<std::string(const symbolic::ExprNode &)> legacyKey =
      [&](const symbolic::ExprNode &n) -> std::string {
    std::string s;
    s += std::to_string(static_cast<int>(n.kind));
    s += n.name;
    s += std::to_string(n.value);
    s += '(';
    for (const auto &op : n.operands) {
      s += legacyKey(*op);
      s += ',';
    }
    s += ')';
    return s;
  };
  symbolic::Expr wide;
  for (int i = 0; i < 24; ++i)
    wide += symbolic::Expr::intConst(i % 5 + 1) *
            symbolic::Expr::param("p" + std::to_string(i % 8)) *
            symbolic::Expr::param("q" + std::to_string(i % 3));
  symbolic::Expr same = wide + symbolic::Expr::intConst(0);

  constexpr int kEqualsRepeats = 20000;
  auto now = [] { return std::chrono::steady_clock::now(); };
  auto start = now();
  bool sink = false;
  for (int i = 0; i < kEqualsRepeats; ++i)
    sink ^= legacyKey(wide.node()) == legacyKey(same.node());
  const double legacySeconds =
      std::chrono::duration<double>(now() - start).count();
  start = now();
  for (int i = 0; i < kEqualsRepeats; ++i)
    sink ^= wide.equals(same);
  const double internedSeconds =
      std::chrono::duration<double>(now() - start).count();
  benchmark::DoNotOptimize(sink);
  std::printf("equals on a %zu-term expression, %d reps: string rebuild "
              "%.4f s -> hash-consed %.6f s (%.0fx)\n",
              wide.node().operands.size(), kEqualsRepeats, legacySeconds,
              internedSeconds,
              internedSeconds > 0 ? legacySeconds / internedSeconds : 0.0);
  bench::printRule();
}

std::vector<core::AnalysisSpec> coverageSpecs() {
  std::vector<core::AnalysisSpec> specs;
  for (driver::AnalysisRequest &request : batchRequests()) {
    core::AnalysisSpec spec;
    spec.name = std::move(request.name);
    spec.source = std::move(request.source);
    spec.artifacts = core::kArtifactCoverage | core::kArtifactDiagnostics;
    specs.push_back(std::move(spec));
  }
  return specs;
}

/// The coverage-artifact ladder (ISSUE 4 headline): full compute vs.
/// recompile-on-demand vs. cached summary vs. warm daemon.
void printCoveragePhase() {
  bench::printHeader(
      "Coverage artifact ladder: where the answer comes from\n"
      "(same sources; lower rungs skip progressively more pipeline)");
  auto specs = coverageSpecs();
  auto now = [] { return std::chrono::steady_clock::now(); };
  auto elapsed = [](std::chrono::steady_clock::time_point start) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };

  // Rung 1 — cold full compute: parse -> codegen -> model, per source.
  double coldSeconds = 0;
  {
    driver::BatchOptions options;
    options.threads = 1;
    options.useCache = false;
    driver::BatchAnalyzer analyzer(options);
    auto start = now();
    auto results = analyzer.runArtifacts(specs);
    coldSeconds = elapsed(start);
    for (const auto &artifacts : results)
      if (!artifacts.ok)
        std::abort();
  }

  // Rung 2 — recompile-on-demand: what a schema-v1 cache entry (model
  // only, no summary) degrades to — parse -> codegen, no model stage.
  double recompileSeconds = 0;
  {
    auto start = now();
    for (const auto &spec : specs) {
      auto handle = core::ProgramHandle::deferred(spec.source, spec.name,
                                                  spec.options.compile);
      auto program = handle->get();
      if (!program)
        std::abort();
      benchmark::DoNotOptimize(
          sema::computeLoopCoverage(*program->unit).loops);
    }
    recompileSeconds = elapsed(start);
  }

  // Rung 3 — schema-v2 summary from a warm disk cache: deserialization
  // only, no compiler at all.
  const std::string cacheDir =
      (std::filesystem::temp_directory_path() / "mira_bench_coverage")
          .string();
  std::filesystem::remove_all(cacheDir);
  driver::BatchOptions diskOptions;
  diskOptions.threads = 1;
  diskOptions.cacheDir = cacheDir;
  {
    driver::BatchAnalyzer seed(diskOptions);
    seed.runArtifacts(specs); // populate the directory
  }
  double summarySeconds = 0;
  std::size_t summaryHits = 0, summaryRecompiles = 0;
  {
    driver::BatchAnalyzer warm(diskOptions);
    auto start = now();
    auto results = warm.runArtifacts(specs);
    summarySeconds = elapsed(start);
    benchmark::DoNotOptimize(results.size());
    summaryHits = warm.stats().coverageFromCache;
    summaryRecompiles = warm.stats().recompiles;
  }
  std::filesystem::remove_all(cacheDir);

  // Rung 4 — warm daemon over the Unix socket: summary + wire framing.
  double daemonSeconds = -1;
  const std::string socketPath =
      (std::filesystem::temp_directory_path() /
       ("mira_bench_coverage_" + std::to_string(::getpid()) + ".sock"))
          .string();
  server::ServerOptions serverOptions;
  serverOptions.socketPath = socketPath;
  serverOptions.threads = 2;
  server::AnalysisServer daemon(serverOptions);
  std::string error;
  if (daemon.start(error)) {
    std::thread serveThread([&daemon] { daemon.serve(); });
    server::Client client;
    if (client.connect(socketPath)) {
      for (const auto &spec : specs) { // warm the daemon's memory cache
        server::CoverageReply reply;
        if (!client.coverage(spec.name, spec.source, spec.options, reply) ||
            !reply.ok)
          std::abort();
      }
      auto start = now();
      for (const auto &spec : specs) {
        server::CoverageReply reply;
        if (!client.coverage(spec.name, spec.source, spec.options, reply) ||
            !reply.cacheHit)
          std::abort();
      }
      daemonSeconds = elapsed(start);
    }
    if (!client.shutdownServer())
      daemon.requestStop();
    serveThread.join();
  } else {
    std::printf("daemon rung skipped: %s\n", error.c_str());
  }

  const double perSource = 1e3 / static_cast<double>(specs.size());
  std::printf("%zu sources, ms/source:\n", specs.size());
  std::printf("  cold full compute       : %8.4f\n",
              coldSeconds * perSource);
  std::printf("  recompile-on-demand (v1): %8.4f (%.1fx vs cold)\n",
              recompileSeconds * perSource,
              recompileSeconds > 0 ? coldSeconds / recompileSeconds : 0.0);
  std::printf("  warm v2 summary         : %8.4f (%.1fx vs cold, "
              "%zu from summaries, %zu recompiles)\n",
              summarySeconds * perSource,
              summarySeconds > 0 ? coldSeconds / summarySeconds : 0.0,
              summaryHits, summaryRecompiles);
  if (daemonSeconds >= 0)
    std::printf("  warm daemon (wire)      : %8.4f (%.1fx vs cold)\n",
                daemonSeconds * perSource,
                daemonSeconds > 0 ? coldSeconds / daemonSeconds : 0.0);
  if (summaryRecompiles != 0)
    std::printf("  WARNING: warm summary run recompiled %zu sources\n",
                summaryRecompiles);
  bench::printRule();
}

void BM_CoverageWarmDaemon(benchmark::State &state) {
  // Steady-state coverage latency against a warm daemon: one wire
  // round-trip answered from the cached schema-v2 summary — never the
  // compiler (the reply's recompiled flag pins that).
  const std::string socketPath =
      (std::filesystem::temp_directory_path() /
       ("mira_bench_cov_bm_" + std::to_string(::getpid()) + ".sock"))
          .string();
  server::ServerOptions options;
  options.socketPath = socketPath;
  server::AnalysisServer daemon(options);
  std::string error;
  if (!daemon.start(error)) {
    state.SkipWithError(error.c_str());
    return;
  }
  std::thread serveThread([&daemon] { daemon.serve(); });
  server::Client client;
  server::CoverageReply reply;
  if (!client.connect(socketPath) ||
      !client.coverage("@fig5", workloads::fig5Source(), core::MiraOptions(),
                       reply)) {
    daemon.requestStop();
    serveThread.join();
    state.SkipWithError("daemon warmup failed");
    return;
  }
  for (auto _ : state) {
    if (!client.coverage("@fig5", workloads::fig5Source(),
                         core::MiraOptions(), reply) ||
        reply.recompiled)
      std::abort();
    benchmark::DoNotOptimize(reply.coverage.loops);
  }
  state.SetItemsProcessed(state.iterations());
  if (!client.shutdownServer())
    daemon.requestStop();
  serveThread.join();
}
BENCHMARK(BM_CoverageWarmDaemon)->Unit(benchmark::kMillisecond);

void BM_CoverageRecompileOnDemand(benchmark::State &state) {
  // The schema-v1 degradation path in isolation: parse -> sema ->
  // codegen (no model generation) plus one AST walk, per iteration.
  const std::string &source = workloads::fig5Source();
  for (auto _ : state) {
    auto handle = core::ProgramHandle::deferred(source, "@fig5",
                                                core::CompileOptions{});
    auto program = handle->get();
    if (!program)
      std::abort();
    benchmark::DoNotOptimize(sema::computeLoopCoverage(*program->unit).loops);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CoverageRecompileOnDemand)->Unit(benchmark::kMillisecond);

void BM_DaemonWarmAnalyze(benchmark::State &state) {
  // Socket round-trip + cache hit: the daemon's steady-state serving
  // latency for one already-hot source.
  const std::string socketPath =
      (std::filesystem::temp_directory_path() /
       ("mira_bench_daemon_bm_" + std::to_string(::getpid()) + ".sock"))
          .string();
  server::ServerOptions options;
  options.socketPath = socketPath;
  server::AnalysisServer daemon(options);
  std::string error;
  if (!daemon.start(error)) {
    state.SkipWithError(error.c_str());
    return;
  }
  std::thread serveThread([&daemon] { daemon.serve(); });
  server::Client client;
  server::ClientOutcome outcome;
  if (!client.connect(socketPath) ||
      !client.analyze("@fig5", workloads::fig5Source(), core::MiraOptions(),
                      outcome)) {
    daemon.requestStop();
    serveThread.join();
    state.SkipWithError("daemon warmup failed");
    return;
  }
  for (auto _ : state) {
    if (!client.analyze("@fig5", workloads::fig5Source(), core::MiraOptions(),
                        outcome))
      std::abort();
    benchmark::DoNotOptimize(outcome.payload.size());
  }
  state.SetItemsProcessed(state.iterations());
  if (!client.shutdownServer())
    daemon.requestStop();
  serveThread.join();
}
BENCHMARK(BM_DaemonWarmAnalyze)->Unit(benchmark::kMillisecond);

void BM_ManifestBatchWarmDaemon(benchmark::State &state) {
  // Steady-state corpus latency: one ManifestBatch round-trip against a
  // warm daemon — selection planning, a memory hit per entry, and one
  // merged report on the wire. The per-item rate is what a polling CI
  // loop re-running an unchanged corpus pays.
  const std::filesystem::path corpusDir =
      std::filesystem::temp_directory_path() / "mira_bench_manifest_bm";
  corpus::Manifest manifest;
  if (!writeBenchCorpus(corpusDir, manifest)) {
    state.SkipWithError("corpus setup failed");
    return;
  }
  const std::string manifestBytes = corpus::serializeManifest(manifest);
  const std::string socketPath =
      (std::filesystem::temp_directory_path() /
       ("mira_bench_manifest_bm_" + std::to_string(::getpid()) + ".sock"))
          .string();
  server::ServerOptions options;
  options.socketPath = socketPath;
  options.threads = 2;
  server::AnalysisServer daemon(options);
  std::string error;
  if (!daemon.start(error)) {
    state.SkipWithError(error.c_str());
    return;
  }
  std::thread serveThread([&daemon] { daemon.serve(); });
  server::Client client;
  std::string reportBytes;
  if (!client.connect(socketPath) ||
      !client.manifestBatch(manifestBytes, "", "", driver::ShardSpec{},
                            core::MiraOptions(), nullptr, reportBytes)) {
    daemon.requestStop();
    serveThread.join();
    state.SkipWithError("daemon warmup failed");
    return;
  }
  for (auto _ : state) {
    if (!client.manifestBatch(manifestBytes, "", "", driver::ShardSpec{},
                              core::MiraOptions(), nullptr, reportBytes))
      std::abort();
    benchmark::DoNotOptimize(reportBytes.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(manifest.entries.size()));
  if (!client.shutdownServer())
    daemon.requestStop();
  serveThread.join();
  std::filesystem::remove_all(corpusDir);
}
BENCHMARK(BM_ManifestBatchWarmDaemon)->Unit(benchmark::kMillisecond);

void BM_BatchAnalyzeWarmDiskCache(benchmark::State &state) {
  auto requests = batchRequests();
  const std::string cacheDir =
      (std::filesystem::temp_directory_path() / "mira_bench_disk_cache_bm")
          .string();
  std::filesystem::remove_all(cacheDir);
  driver::BatchOptions options;
  options.threads = 4;
  options.cacheDir = cacheDir;
  {
    driver::BatchAnalyzer seed(options);
    seed.run(requests); // populate the directory
  }
  for (auto _ : state) {
    // A fresh analyzer per iteration: every request goes memory-miss ->
    // disk-hit, timing deserialization rather than analysis.
    driver::BatchAnalyzer analyzer(options);
    auto outcomes = analyzer.run(requests);
    benchmark::DoNotOptimize(outcomes.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(requests.size()));
  std::filesystem::remove_all(cacheDir);
}
BENCHMARK(BM_BatchAnalyzeWarmDiskCache)->Unit(benchmark::kMillisecond);

void BM_BatchAnalyzeSerial(benchmark::State &state) {
  auto requests = batchRequests();
  for (auto _ : state)
    benchmark::DoNotOptimize(timeBatch(requests, 1));
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(requests.size()));
}
BENCHMARK(BM_BatchAnalyzeSerial)->Unit(benchmark::kMillisecond);

void BM_BatchAnalyzeParallel(benchmark::State &state) {
  auto requests = batchRequests();
  const auto threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state)
    benchmark::DoNotOptimize(timeBatch(requests, threads));
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(requests.size()));
}
BENCHMARK(BM_BatchAnalyzeParallel)->Arg(2)->Arg(4)->Arg(8)->Unit(
    benchmark::kMillisecond);

void BM_ExprCanonicalizeLikeTerms(benchmark::State &state) {
  // The canonicalizing Expr::add hot path: many mergeable terms, the
  // merge keyed on interned node identity.
  using symbolic::Expr;
  for (auto _ : state) {
    std::vector<Expr> terms;
    terms.reserve(96);
    for (int i = 0; i < 96; ++i)
      terms.push_back(Expr::intConst(i % 7 + 1) *
                      Expr::param("p" + std::to_string(i % 8)));
    benchmark::DoNotOptimize(&Expr::add(std::move(terms)).node());
  }
  state.SetItemsProcessed(state.iterations() * 96);
}
BENCHMARK(BM_ExprCanonicalizeLikeTerms)->Unit(benchmark::kMicrosecond);

void BM_ExprEqualsInterned(benchmark::State &state) {
  // Pointer-identity equality on hash-consed expressions — the
  // comparison canonicalization and like-term merging do constantly.
  using symbolic::Expr;
  Expr a, b;
  for (int i = 0; i < 32; ++i) {
    a += Expr::param("n" + std::to_string(i % 6)) * Expr::intConst(i + 1);
    b += Expr::param("n" + std::to_string(i % 6)) * Expr::intConst(i + 1);
  }
  for (auto _ : state)
    benchmark::DoNotOptimize(a.equals(b));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ExprEqualsInterned)->Unit(benchmark::kNanosecond);

void BM_BatchAnalyzeWarmCache(benchmark::State &state) {
  auto requests = batchRequests();
  driver::BatchAnalyzer analyzer(driver::BatchOptions{4, true});
  analyzer.run(requests); // populate
  for (auto _ : state) {
    auto outcomes = analyzer.run(requests);
    benchmark::DoNotOptimize(outcomes.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(requests.size()));
}
BENCHMARK(BM_BatchAnalyzeWarmCache)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  printSpeedupTable();
  printManifestBatchPhase();
  printCoveragePhase();
  printInternPhase();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
