// Sec. IV-D1 tradeoff — "our model only needs to be generated once, and
// then can be evaluated (at low computational cost) for different user
// inputs", versus dynamic approaches that re-run the application for
// every input. This bench quantifies that claim: one-time model
// generation cost, per-input model evaluation cost, and per-input
// simulation (measurement) cost across a parameter sweep.
#include "bench_util.h"

#include <chrono>

namespace {

using namespace mira;
using sim::Value;

void printTradeoff() {
  using clock = std::chrono::steady_clock;
  auto ms = [](clock::duration d) {
    return std::chrono::duration<double, std::milli>(d).count();
  };

  bench::printHeader(
      "Sec. IV-D1: static-once vs dynamic-per-input cost (STREAM sweep)");

  // One-time static analysis.
  DiagnosticEngine diags;
  core::AnalysisSpec spec;
  spec.name = "stream.mc";
  spec.source = workloads::streamSource();
  spec.artifacts = core::kArtifactModel | core::kArtifactDiagnostics |
                   core::kArtifactProgram;
  auto t0 = clock::now();
  core::Artifacts artifacts = core::analyze(spec, diags);
  auto t1 = clock::now();
  auto analysis = artifacts.resultV1;
  double generationMs = ms(t1 - t0);

  const std::vector<std::int64_t> sweep = {100'000,   500'000,  1'000'000,
                                           2'000'000, 5'000'000, 10'000'000,
                                           20'000'000};
  double evalTotalMs = 0;
  double simTotalMs = 0;
  std::printf("%-12s | %16s | %16s\n", "N", "model eval (ms)",
              "simulation (ms)");
  for (std::int64_t n : sweep) {
    auto e0 = clock::now();
    auto staticFPI =
        analysis->staticFPI("stream_main", {{"n", n}, {"ntimes", 10}});
    auto e1 = clock::now();
    auto r = bench::simulateFF(*analysis, "stream_main",
                               {Value::ofInt(n), Value::ofInt(10)});
    auto e2 = clock::now();
    benchmark::DoNotOptimize(staticFPI);
    benchmark::DoNotOptimize(r.total.fpInstructions);
    evalTotalMs += ms(e1 - e0);
    simTotalMs += ms(e2 - e1);
    std::printf("%-12lld | %16.3f | %16.3f\n", static_cast<long long>(n),
                ms(e1 - e0), ms(e2 - e1));
  }
  bench::printRule();
  std::printf("model generation (once)      : %10.2f ms\n", generationMs);
  std::printf("model evaluation (%zu inputs) : %10.2f ms total\n",
              sweep.size(), evalTotalMs);
  std::printf("simulation      (%zu inputs) : %10.2f ms total\n",
              sweep.size(), simTotalMs);
  std::printf("NOTE: the simulator fast-forwards counted loops; measuring "
              "on real hardware would add the full execution time per "
              "input, widening the gap the paper describes.\n");
  bench::printRule();
}

void BM_ModelEvalPerInput(benchmark::State &state) {
  auto &a = bench::analyzeCached(workloads::streamSource(), "stream.mc");
  std::int64_t n = 1;
  for (auto _ : state) {
    n = (n % 20'000'000) + 1'000'003; // vary the input each time
    auto s = a.staticFPI("stream_main", {{"n", n}, {"ntimes", 10}});
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_ModelEvalPerInput);

void BM_SimulationPerInput(benchmark::State &state) {
  auto &a = bench::analyzeCached(workloads::streamSource(), "stream.mc");
  for (auto _ : state) {
    auto r = bench::simulateFF(a, "stream_main",
                               {Value::ofInt(1'000'000), Value::ofInt(10)});
    benchmark::DoNotOptimize(r.total.fpInstructions);
  }
}
BENCHMARK(BM_SimulationPerInput)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  printTradeoff();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
