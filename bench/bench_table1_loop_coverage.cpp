// Table I — Loop coverage in high-performance applications.
//
// The paper reprints Bastoul et al.'s survey of ten HPC codes showing
// 77-100% of statements live inside loops. We run Mira's loop-coverage
// analyzer over the MiniC stand-in suite (DESIGN.md substitution table)
// and print our measured profile next to the paper's reference numbers.
// The shape criterion: every kernel keeps a large majority of statements
// in loops, with the same 77-100% band.
#include "bench_util.h"

#include "frontend/parser.h"
#include "sema/ast_stats.h"
#include "workloads/coverage_suite.h"

namespace {

using namespace mira;

void printTable1() {
  bench::printHeader(
      "Table I: Loop coverage in high-performance applications\n"
      "(paper columns = Bastoul et al. survey; ours = MiniC stand-in "
      "kernels)");
  std::printf("%-10s | %17s | %17s | %10s | %10s\n", "App",
              "loops paper/ours", "stmts paper/ours", "in-loop", "pct p/o");
  for (const auto &kernel : workloads::coverageSuite()) {
    DiagnosticEngine diags;
    auto unit = frontend::Parser::parse(kernel.source, kernel.name, diags);
    if (diags.hasErrors()) {
      std::printf("%-10s | parse error\n", kernel.name.c_str());
      continue;
    }
    auto cov = sema::computeLoopCoverage(*unit);
    std::printf("%-10s | %8zu / %-6zu | %8zu / %-6zu | %10zu | %3d%% / %.0f%%\n",
                kernel.name.c_str(), kernel.paperLoops, cov.loops,
                kernel.paperStatements, cov.statements, cov.inLoopStatements,
                kernel.paperPercent, cov.percent());
  }
  bench::printRule();
}

void BM_LoopCoverageAnalysis(benchmark::State &state) {
  const auto &suite = workloads::coverageSuite();
  for (auto _ : state) {
    for (const auto &kernel : suite) {
      DiagnosticEngine diags;
      auto unit = frontend::Parser::parse(kernel.source, kernel.name, diags);
      auto cov = sema::computeLoopCoverage(*unit);
      benchmark::DoNotOptimize(cov.inLoopStatements);
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(suite.size()));
}
BENCHMARK(BM_LoopCoverageAnalysis);

} // namespace

int main(int argc, char **argv) {
  printTable1();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
