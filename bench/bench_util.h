// Shared helpers for the reproduction benches: workload analysis caching,
// paper-style table printing, and error formatting. Each bench binary
// regenerates one table or figure of the paper (see DESIGN.md experiment
// index) and then runs its google-benchmark timings.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/artifacts.h"
#include "core/mira.h"
#include "support/string_utils.h"
#include "workloads/workloads.h"

namespace mira::bench {

/// Analyze-once helper for the table printers. Guarded by a mutex so
/// multi-threaded google-benchmark registrations can share it.
inline core::AnalysisResult &analyzeCached(const std::string &source,
                                           const std::string &name) {
  static std::mutex mutex;
  static std::map<std::string, std::unique_ptr<core::AnalysisResult>> cache;
  std::lock_guard<std::mutex> lock(mutex);
  auto it = cache.find(name);
  if (it == cache.end()) {
    DiagnosticEngine diags;
    core::AnalysisSpec spec;
    spec.name = name;
    spec.source = source;
    spec.artifacts = core::kArtifactModel | core::kArtifactDiagnostics |
                     core::kArtifactProgram;
    core::Artifacts artifacts = core::analyze(spec, diags);
    if (!artifacts.ok || !artifacts.resultV1) {
      std::fprintf(stderr, "analysis of %s failed:\n%s\n", name.c_str(),
                   diags.str().c_str());
      std::abort();
    }
    it = cache
             .emplace(name, std::make_unique<core::AnalysisResult>(
                                *artifacts.resultV1))
             .first;
  }
  return *it->second;
}

inline sim::SimResult simulateFF(const core::AnalysisResult &analysis,
                                 const std::string &fn,
                                 const std::vector<sim::Value> &args) {
  sim::SimOptions options;
  options.fastForward = true;
  auto r = core::simulate(*analysis.program, fn, args, options);
  if (!r.ok) {
    std::fprintf(stderr, "simulation of %s failed: %s\n", fn.c_str(),
                 r.error.c_str());
    std::abort();
  }
  return r;
}

inline void printRule(std::size_t width = 78) {
  std::puts(std::string(width, '-').c_str());
}

inline void printHeader(const std::string &title) {
  printRule();
  std::puts(title.c_str());
  printRule();
}

/// "8.239E7"-style count formatting as in the paper's tables.
inline std::string fmtCount(double v) { return formatCount(v); }
inline std::string fmtErr(double modeled, double measured) {
  return formatPercent(core::relativeError(modeled, measured));
}

} // namespace mira::bench
