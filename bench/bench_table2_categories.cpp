// Table II + Fig. 6 — Categorized instruction counts and distribution of
// function cg_solve.
//
// The paper evaluates the Mira-generated model of miniFE's cg_solve with
// the architecture description file's 64-way categorization and reports
// per-category counts (Table II) and their relative distribution (Fig. 6,
// a pie chart; printed here as percentage shares). Shape criteria:
// integer data transfer dominates, SSE2 packed arithmetic and SSE2 data
// movement are the FP-related heavyweights, and the same seven category
// rows are populated.
#include "bench_util.h"

#include "workloads/workloads.h"

namespace {

using namespace mira;

model::Env minifeEnv(int nx, int ny, int nz, int iters) {
  return {{"nx", nx},
          {"ny", ny},
          {"nz", nz},
          {"max_iters", iters},
          {"nrows", static_cast<std::int64_t>(nx) * ny * nz},
          {"nnz_row", 7}};
}

void printTable2AndFig6() {
  auto &a = bench::analyzeCached(workloads::minifeSource(), "minife.mc");
  // Paper problem size 35x40x45; miniFE's default CG budget is 200
  // iterations (we use the same).
  model::Env env = minifeEnv(35, 40, 45, 200);
  std::string error;
  auto counts = a.model.evaluate("cg_solve", env, &error);
  if (!counts) {
    std::fprintf(stderr, "model evaluation failed: %s\n", error.c_str());
    std::abort();
  }
  auto categories = counts->categories(arch::haswellDescription());

  bench::printHeader(
      "Table II: Categorized instruction counts of function cg_solve\n"
      "(Mira model, 35x40x45, 200 CG iterations, haswell-arya.adf)");
  std::printf("%-55s | %12s\n", "Category", "Count");
  double total = 0;
  for (std::size_t c = 0; c < isa::kNumCategories; ++c)
    total += categories[c];
  // Print the paper's seven headline categories first, then any other
  // populated category.
  const isa::InstrCategory headline[] = {
      isa::InstrCategory::IntArith,
      isa::InstrCategory::IntControlTransfer,
      isa::InstrCategory::IntDataTransfer,
      isa::InstrCategory::SSE2DataMovement,
      isa::InstrCategory::SSE2PackedArith,
      isa::InstrCategory::MiscInstruction,
      isa::InstrCategory::Mode64Bit,
  };
  for (isa::InstrCategory c : headline) {
    std::printf("%-55s | %12s\n", isa::categoryName(c).c_str(),
                bench::fmtCount(categories[static_cast<std::size_t>(c)])
                    .c_str());
  }
  for (std::size_t c = 0; c < isa::kNumCategories; ++c) {
    bool isHeadline = false;
    for (isa::InstrCategory h : headline)
      if (static_cast<std::size_t>(h) == c)
        isHeadline = true;
    if (!isHeadline && categories[c] > 0)
      std::printf("%-55s | %12s\n",
                  isa::categoryName(static_cast<isa::InstrCategory>(c))
                      .c_str(),
                  bench::fmtCount(categories[c]).c_str());
  }
  std::printf("%-55s | %12s\n", "TOTAL", bench::fmtCount(total).c_str());

  bench::printHeader("Fig. 6: Instruction distribution of cg_solve "
                     "(percentage shares; the paper's pie chart)");
  for (std::size_t c = 0; c < isa::kNumCategories; ++c) {
    if (categories[c] <= 0)
      continue;
    double share = 100.0 * categories[c] / total;
    std::printf("%-55s | %6.2f%% %s\n",
                isa::categoryName(static_cast<isa::InstrCategory>(c))
                    .c_str(),
                share,
                std::string(static_cast<std::size_t>(share / 2), '#')
                    .c_str());
  }
  bench::printRule();
}

void BM_ModelEvaluation_CgSolve(benchmark::State &state) {
  auto &a = bench::analyzeCached(workloads::minifeSource(), "minife.mc");
  model::Env env = minifeEnv(35, 40, 45, 200);
  for (auto _ : state) {
    auto counts = a.model.evaluate("cg_solve", env);
    benchmark::DoNotOptimize(counts);
  }
}
BENCHMARK(BM_ModelEvaluation_CgSolve);

void BM_CategoryAggregation(benchmark::State &state) {
  auto &a = bench::analyzeCached(workloads::minifeSource(), "minife.mc");
  auto counts = a.model.evaluate("cg_solve", minifeEnv(35, 40, 45, 200));
  for (auto _ : state) {
    auto categories = counts->categories(arch::haswellDescription());
    benchmark::DoNotOptimize(categories);
  }
}
BENCHMARK(BM_CategoryAggregation);

} // namespace

int main(int argc, char **argv) {
  printTable2AndFig6();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
