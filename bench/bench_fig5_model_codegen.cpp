// Fig. 5 — Statically generated model: prints the Python model Mira emits
// for the paper's class-A example (member function with annotated inner
// bound, called from a driver), and times model generation end to end —
// the "generate once, evaluate cheaply" half of the paper's tradeoff
// argument (Sec. IV-D1).
#include "bench_util.h"

#include "model/python_emitter.h"

namespace {

using namespace mira;

/// One full model-generation pass through the v2 artifact API; the
/// timed unit for the generation benches below.
core::Artifacts generateModel(const std::string &source,
                              const std::string &name) {
  DiagnosticEngine diags;
  core::AnalysisSpec spec;
  spec.name = name;
  spec.source = source;
  spec.artifacts = core::kArtifactModel | core::kArtifactDiagnostics;
  return core::analyze(spec, diags);
}

void printFig5() {
  auto &a = bench::analyzeCached(workloads::fig5Source(), "fig5.mc");
  bench::printHeader(
      "Fig. 5: statically generated Python model for the class-A example\n"
      "(b) generated foo function and (c) generated driver follow");
  model::PythonEmitOptions options;
  std::puts(model::emitPython(a.model, options).c_str());
  bench::printRule();

  // Cross-check: evaluating the model with the annotation parameter y=8
  // matches executing the program (len[i] = 8 in the driver).
  auto counts = a.model.evaluate("A::foo", {{"y", 8}});
  auto r = core::simulate(*a.program, "fig5_main", {sim::Value::ofInt(64)});
  std::printf("model FPI of A::foo at y=8: %s, executed: %s (error %s)\n",
              bench::fmtCount(counts ? counts->fpInstructions : -1).c_str(),
              bench::fmtCount(r.fpiOf("A::foo")).c_str(),
              bench::fmtErr(counts ? counts->fpInstructions : 0,
                            r.fpiOf("A::foo"))
                  .c_str());
  bench::printRule();
}

void BM_FullModelGeneration(benchmark::State &state) {
  // Parse + compile + disassemble + bridge + metric generation: the
  // "model only needs to be generated once" cost.
  for (auto _ : state) {
    core::Artifacts result = generateModel(workloads::fig5Source(), "fig5.mc");
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_FullModelGeneration)->Unit(benchmark::kMillisecond);

void BM_PythonEmission(benchmark::State &state) {
  auto &a = bench::analyzeCached(workloads::fig5Source(), "fig5.mc");
  for (auto _ : state) {
    std::string py = model::emitPython(a.model);
    benchmark::DoNotOptimize(py);
  }
}
BENCHMARK(BM_PythonEmission);

void BM_MiniFEModelGeneration(benchmark::State &state) {
  for (auto _ : state) {
    core::Artifacts result =
        generateModel(workloads::minifeSource(), "minife.mc");
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_MiniFEModelGeneration)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  printFig5();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
